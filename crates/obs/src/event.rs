//! Typed trace events.

use tabs_kernel::{NodeId, ObjectId, PageId, PortId, PrimitiveOp, Tid};

/// A participant's answer to a coordinator's prepare request (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// Prepared: updates are on stable storage, locks are held.
    Yes,
    /// Refused: the participant has aborted.
    No,
    /// Read-only optimization: no second phase needed at this site.
    ReadOnly,
}

impl std::fmt::Display for Vote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vote::Yes => write!(f, "yes"),
            Vote::No => write!(f, "no"),
            Vote::ReadOnly => write!(f, "read-only"),
        }
    }
}

/// One observable step of the facility, attributed to a transaction (or
/// [`Tid::NULL`] for traffic the layer cannot attribute).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A transaction began (`parent` is [`Tid::NULL`] for top-level ones).
    TxnBegin {
        /// Parent transaction, for subtransactions.
        parent: Tid,
    },
    /// A transaction committed at this node.
    TxnCommit,
    /// A transaction aborted at this node.
    TxnAbort,

    /// A lock was granted.
    LockAcquire {
        /// Locked object.
        object: ObjectId,
        /// Requested mode (`Debug` form of the type-specific mode).
        mode: String,
    },
    /// A lock request started waiting on an incompatible holder.
    LockWait {
        /// Contended object.
        object: ObjectId,
        /// Requested mode.
        mode: String,
    },
    /// A lock wait exceeded its time-out (the paper's deadlock policy).
    LockTimeout {
        /// Contended object.
        object: ObjectId,
        /// Requested mode.
        mode: String,
    },

    /// A record was appended to the write-ahead log.
    LogAppend {
        /// Log sequence number assigned to the record.
        lsn: u64,
    },
    /// The log was forced to stable storage.
    LogForce {
        /// Highest LSN guaranteed durable by this force.
        lsn: u64,
    },
    /// One group-commit force covered several committers' tickets.
    LogForceBatched {
        /// Highest LSN guaranteed durable by this force.
        lsn: u64,
        /// Number of committers whose tickets rode this force.
        batch_size: u64,
    },

    /// A page was demand-paged in from disk.
    PageIn {
        /// Faulted page.
        page: PageId,
        /// Whether the fault was classified as sequential (Table 5-1).
        sequential: bool,
    },
    /// A dirty page was written back (eviction or explicit flush).
    PageOut {
        /// Written page.
        page: PageId,
    },

    /// A message was sent to a local port.
    PortSend {
        /// Destination port.
        port: PortId,
        /// Message class (small/large/pointer, Table 5-1).
        class: PrimitiveOp,
        /// Payload size in bytes.
        bytes: usize,
    },

    /// An inter-node datagram left this node.
    DatagramSend {
        /// Destination node.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// An inter-node datagram arrived at this node.
    DatagramRecv {
        /// Source node.
        from: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A session (byte-stream) payload left this node.
    SessionSend {
        /// Destination node.
        to: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A session payload arrived at this node.
    SessionRecv {
        /// Source node.
        from: NodeId,
        /// Payload size in bytes.
        bytes: usize,
    },

    /// Phase one: the coordinator asked a participant to prepare.
    PrepareSend {
        /// Participant node.
        to: NodeId,
    },
    /// Phase one: a participant received the prepare request.
    PrepareRecv {
        /// Coordinator node.
        from: NodeId,
    },
    /// Phase one: a participant answered the coordinator.
    VoteSend {
        /// Coordinator node.
        to: NodeId,
        /// The participant's vote.
        vote: Vote,
    },
    /// Phase one: the coordinator received a participant's vote.
    VoteRecv {
        /// Participant node.
        from: NodeId,
        /// The participant's vote.
        vote: Vote,
    },
    /// Phase two: the coordinator announced its decision.
    DecisionSend {
        /// Participant node.
        to: NodeId,
        /// True for commit, false for abort.
        commit: bool,
    },
    /// Phase two: a participant received the decision.
    DecisionRecv {
        /// Coordinator node.
        from: NodeId,
        /// True for commit, false for abort.
        commit: bool,
    },
    /// Phase two: a participant acknowledged the decision.
    AckSend {
        /// Coordinator node.
        to: NodeId,
    },
    /// Phase two: the coordinator received an acknowledgement.
    AckRecv {
        /// Participant node.
        from: NodeId,
    },

    /// A deadlock-detection probe left this node, chasing a waits-for
    /// chain (attributed to the transaction at the head of the path).
    ProbeSend {
        /// Destination node.
        to: NodeId,
        /// Length of the waits-for chain carried so far.
        hops: u32,
    },
    /// A deadlock-detection probe arrived at this node.
    ProbeRecv {
        /// Source node.
        from: NodeId,
        /// Length of the waits-for chain carried so far.
        hops: u32,
    },
    /// A confirmed waits-for cycle chose a victim (attributed to the
    /// victim transaction).
    VictimChosen {
        /// The transaction being aborted to break the cycle.
        victim: Tid,
        /// Number of transactions in the confirmed cycle.
        cycle: u32,
    },

    /// A heartbeat interval elapsed without hearing from a peer (recorded
    /// under [`Tid::NULL`]; failure detection is not transactional).
    HeartbeatMiss {
        /// The silent peer.
        node: NodeId,
        /// Consecutive intervals missed so far.
        missed: u32,
    },
    /// The failure detector declared a peer suspected-unreachable.
    PeerSuspected {
        /// The suspected peer.
        node: NodeId,
    },
    /// A previously suspected peer was heard from again.
    PeerReachable {
        /// The recovered peer.
        node: NodeId,
    },
    /// Cooperative termination: an in-doubt participant asked a peer for
    /// the outcome of a transaction (attributed to that transaction).
    TerminationQuery {
        /// Queried node ([`crate::TraceCollector`] direction: outgoing).
        to: NodeId,
    },
    /// A node rebooted on its durable state and rejoined the cluster.
    NodeRejoin {
        /// The rejoining node.
        node: NodeId,
        /// Its new incarnation number (keeps Tids unique across reboots).
        incarnation: u32,
    },

    /// The commit protocol took a fast path for this transaction: the
    /// single-participant 1PC (coordinator is the sole writer, prepare
    /// phase skipped) or the read-only voter drop-out (this participant
    /// voted read-only, released its locks and left phase 2).
    CommitPath {
        /// True for the coordinator's single-participant 1PC.
        one_phase: bool,
        /// True for a participant's read-only drop-out.
        read_only: bool,
    },

    /// A node adopted a newer shard map for a sharded service.
    ShardMapUpdate {
        /// Logical service the map partitions (e.g. `"bank"`).
        service: String,
        /// Version of the adopted map (strictly monotone per service).
        version: u64,
    },
    /// A shard migration began: ownership of `shard` is moving between
    /// nodes (source write-fenced, drain-and-copy under way).
    MigrationStart {
        /// Logical service the shard belongs to.
        service: String,
        /// Index of the migrating shard.
        shard: u32,
        /// Current owner (source).
        from: NodeId,
        /// New owner (destination).
        to: NodeId,
    },
    /// A shard migration committed: the new map version is durable and
    /// the destination serves the shard.
    MigrationDone {
        /// Logical service the shard belongs to.
        service: String,
        /// Index of the migrated shard.
        shard: u32,
        /// Map version that records the new ownership.
        version: u64,
    },

    /// A write was fanned out to a follower replica of a replicated
    /// shard (value-logged inside the enclosing transaction).
    ReplicaWrite {
        /// Index of the replicated shard.
        shard: u32,
        /// The follower the write was forwarded to.
        to: NodeId,
    },
    /// The coordinator waived missing votes from dead replica-set
    /// members because a majority of their group was durably prepared:
    /// the group voted yes as one logical participant.
    ReplicaQuorum {
        /// Number of members whose votes were waived.
        waived: u32,
    },
    /// A rejoining replica was resynchronized from a surviving member
    /// (snapshot-and-load in one distributed transaction).
    ReplicaResync {
        /// Logical service the shard belongs to.
        service: String,
        /// Index of the resynchronized shard.
        shard: u32,
        /// The surviving member the state was copied from.
        from: NodeId,
        /// The rejoined member the state was loaded into.
        to: NodeId,
    },
    /// A client failed over from a dead shard leader to a follower
    /// replica (suspicion-triggered leader handoff).
    LeaderFailover {
        /// Logical service the shard belongs to.
        service: String,
        /// Index of the shard whose leader was bypassed.
        shard: u32,
        /// The unreachable leader.
        from: NodeId,
        /// The follower that answered instead.
        to: NodeId,
    },
}

impl TraceEvent {
    /// Short stable label for filtering and rendering.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::TxnBegin { .. } => "txn-begin",
            TraceEvent::TxnCommit => "txn-commit",
            TraceEvent::TxnAbort => "txn-abort",
            TraceEvent::LockAcquire { .. } => "lock-acquire",
            TraceEvent::LockWait { .. } => "lock-wait",
            TraceEvent::LockTimeout { .. } => "lock-timeout",
            TraceEvent::LogAppend { .. } => "log-append",
            TraceEvent::LogForce { .. } => "log-force",
            TraceEvent::LogForceBatched { .. } => "log-force-batched",
            TraceEvent::PageIn { .. } => "page-in",
            TraceEvent::PageOut { .. } => "page-out",
            TraceEvent::PortSend { .. } => "port-send",
            TraceEvent::DatagramSend { .. } => "datagram-send",
            TraceEvent::DatagramRecv { .. } => "datagram-recv",
            TraceEvent::SessionSend { .. } => "session-send",
            TraceEvent::SessionRecv { .. } => "session-recv",
            TraceEvent::PrepareSend { .. } => "2pc-prepare-send",
            TraceEvent::PrepareRecv { .. } => "2pc-prepare-recv",
            TraceEvent::VoteSend { .. } => "2pc-vote-send",
            TraceEvent::VoteRecv { .. } => "2pc-vote-recv",
            TraceEvent::DecisionSend { .. } => "2pc-decision-send",
            TraceEvent::DecisionRecv { .. } => "2pc-decision-recv",
            TraceEvent::AckSend { .. } => "2pc-ack-send",
            TraceEvent::AckRecv { .. } => "2pc-ack-recv",
            TraceEvent::ProbeSend { .. } => "detect-probe-send",
            TraceEvent::ProbeRecv { .. } => "detect-probe-recv",
            TraceEvent::VictimChosen { .. } => "detect-victim",
            TraceEvent::HeartbeatMiss { .. } => "beat-miss",
            TraceEvent::PeerSuspected { .. } => "peer-suspected",
            TraceEvent::PeerReachable { .. } => "peer-reachable",
            TraceEvent::TerminationQuery { .. } => "termination-query",
            TraceEvent::NodeRejoin { .. } => "node-rejoin",
            TraceEvent::CommitPath { .. } => "commit-path",
            TraceEvent::ShardMapUpdate { .. } => "shard-map-update",
            TraceEvent::MigrationStart { .. } => "migration-start",
            TraceEvent::MigrationDone { .. } => "migration-done",
            TraceEvent::ReplicaWrite { .. } => "replica-write",
            TraceEvent::ReplicaQuorum { .. } => "replica-quorum",
            TraceEvent::ReplicaResync { .. } => "replica-resync",
            TraceEvent::LeaderFailover { .. } => "leader-failover",
        }
    }

    /// Whether this is one of the two-phase-commit transitions.
    pub fn is_two_phase_commit(&self) -> bool {
        matches!(
            self,
            TraceEvent::PrepareSend { .. }
                | TraceEvent::PrepareRecv { .. }
                | TraceEvent::VoteSend { .. }
                | TraceEvent::VoteRecv { .. }
                | TraceEvent::DecisionSend { .. }
                | TraceEvent::DecisionRecv { .. }
                | TraceEvent::AckSend { .. }
                | TraceEvent::AckRecv { .. }
        )
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::TxnBegin { parent } if parent.is_null() => write!(f, "begin"),
            TraceEvent::TxnBegin { parent } => write!(f, "begin (child of {parent})"),
            TraceEvent::TxnCommit => write!(f, "commit"),
            TraceEvent::TxnAbort => write!(f, "abort"),
            TraceEvent::LockAcquire { object, mode } => {
                write!(f, "lock {object} {mode}")
            }
            TraceEvent::LockWait { object, mode } => {
                write!(f, "lock-wait {object} {mode}")
            }
            TraceEvent::LockTimeout { object, mode } => {
                write!(f, "lock-timeout {object} {mode}")
            }
            TraceEvent::LogAppend { lsn } => write!(f, "log-append lsn={lsn}"),
            TraceEvent::LogForce { lsn } => write!(f, "LOG-FORCE lsn={lsn}"),
            TraceEvent::LogForceBatched { lsn, batch_size } => {
                write!(f, "LOG-FORCE-BATCHED lsn={lsn} x{batch_size}")
            }
            TraceEvent::PageIn { page, sequential } => {
                let kind = if *sequential { "seq" } else { "rand" };
                write!(f, "page-in {page} ({kind})")
            }
            TraceEvent::PageOut { page } => write!(f, "page-out {page}"),
            TraceEvent::PortSend { port, bytes, .. } => {
                write!(f, "port-send {port} {bytes}B")
            }
            TraceEvent::DatagramSend { to, bytes } => {
                write!(f, "datagram→{to} {bytes}B")
            }
            TraceEvent::DatagramRecv { from, bytes } => {
                write!(f, "datagram←{from} {bytes}B")
            }
            TraceEvent::SessionSend { to, bytes } => {
                write!(f, "session→{to} {bytes}B")
            }
            TraceEvent::SessionRecv { from, bytes } => {
                write!(f, "session←{from} {bytes}B")
            }
            TraceEvent::PrepareSend { to } => write!(f, "PREPARE→{to}"),
            TraceEvent::PrepareRecv { from } => write!(f, "PREPARE←{from}"),
            TraceEvent::VoteSend { to, vote } => write!(f, "VOTE({vote})→{to}"),
            TraceEvent::VoteRecv { from, vote } => write!(f, "VOTE({vote})←{from}"),
            TraceEvent::DecisionSend { to, commit } => {
                write!(f, "{}→{to}", if *commit { "COMMIT" } else { "ABORT" })
            }
            TraceEvent::DecisionRecv { from, commit } => {
                write!(f, "{}←{from}", if *commit { "COMMIT" } else { "ABORT" })
            }
            TraceEvent::AckSend { to } => write!(f, "ACK→{to}"),
            TraceEvent::AckRecv { from } => write!(f, "ACK←{from}"),
            TraceEvent::ProbeSend { to, hops } => write!(f, "probe→{to} ({hops} hops)"),
            TraceEvent::ProbeRecv { from, hops } => write!(f, "probe←{from} ({hops} hops)"),
            TraceEvent::VictimChosen { victim, cycle } => {
                write!(f, "VICTIM {victim} (cycle of {cycle})")
            }
            TraceEvent::HeartbeatMiss { node, missed } => {
                write!(f, "beat-miss {node} (x{missed})")
            }
            TraceEvent::PeerSuspected { node } => write!(f, "SUSPECT {node}"),
            TraceEvent::PeerReachable { node } => write!(f, "REACHABLE {node}"),
            TraceEvent::TerminationQuery { to } => write!(f, "outcome?→{to}"),
            TraceEvent::NodeRejoin { node, incarnation } => {
                write!(f, "REJOIN {node} (incarnation {incarnation})")
            }
            TraceEvent::CommitPath { one_phase, read_only } => match (one_phase, read_only) {
                (true, _) => write!(f, "FAST-PATH 1pc"),
                (_, true) => write!(f, "FAST-PATH read-only"),
                _ => write!(f, "FAST-PATH"),
            },
            TraceEvent::ShardMapUpdate { service, version } => {
                write!(f, "SHARD-MAP {service} v{version}")
            }
            TraceEvent::MigrationStart { service, shard, from, to } => {
                write!(f, "MIGRATE {service}.s{shard} {from}→{to}")
            }
            TraceEvent::MigrationDone { service, shard, version } => {
                write!(f, "MIGRATED {service}.s{shard} (map v{version})")
            }
            TraceEvent::ReplicaWrite { shard, to } => {
                write!(f, "replica-write s{shard}→{to}")
            }
            TraceEvent::ReplicaQuorum { waived } => {
                write!(f, "QUORUM-COMMIT ({waived} waived)")
            }
            TraceEvent::ReplicaResync { service, shard, from, to } => {
                write!(f, "RESYNC {service}.s{shard} {from}→{to}")
            }
            TraceEvent::LeaderFailover { service, shard, from, to } => {
                write!(f, "FAILOVER {service}.s{shard} {from}→{to}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_kernel::SegmentId;

    #[test]
    fn labels_and_classification() {
        let e = TraceEvent::PrepareSend { to: NodeId(2) };
        assert_eq!(e.label(), "2pc-prepare-send");
        assert!(e.is_two_phase_commit());
        assert!(!TraceEvent::TxnCommit.is_two_phase_commit());
    }

    #[test]
    fn detect_events_label_and_display() {
        let send = TraceEvent::ProbeSend { to: NodeId(2), hops: 3 };
        assert_eq!(send.label(), "detect-probe-send");
        assert_eq!(send.to_string(), "probe→n2 (3 hops)");
        assert!(!send.is_two_phase_commit());
        let recv = TraceEvent::ProbeRecv { from: NodeId(1), hops: 3 };
        assert_eq!(recv.to_string(), "probe←n1 (3 hops)");
        let victim = TraceEvent::VictimChosen {
            victim: Tid { node: NodeId(1), incarnation: 1, seq: 3 },
            cycle: 2,
        };
        assert_eq!(victim.label(), "detect-victim");
        assert_eq!(victim.to_string(), "VICTIM T1.1.3 (cycle of 2)");
    }

    #[test]
    fn partition_events_label_and_display() {
        let miss = TraceEvent::HeartbeatMiss { node: NodeId(2), missed: 3 };
        assert_eq!(miss.label(), "beat-miss");
        assert_eq!(miss.to_string(), "beat-miss n2 (x3)");
        assert!(!miss.is_two_phase_commit());
        let sus = TraceEvent::PeerSuspected { node: NodeId(2) };
        assert_eq!(sus.label(), "peer-suspected");
        assert_eq!(sus.to_string(), "SUSPECT n2");
        let back = TraceEvent::PeerReachable { node: NodeId(2) };
        assert_eq!(back.label(), "peer-reachable");
        assert_eq!(back.to_string(), "REACHABLE n2");
        let query = TraceEvent::TerminationQuery { to: NodeId(1) };
        assert_eq!(query.label(), "termination-query");
        assert_eq!(query.to_string(), "outcome?→n1");
        let rejoin = TraceEvent::NodeRejoin { node: NodeId(1), incarnation: 2 };
        assert_eq!(rejoin.label(), "node-rejoin");
        assert_eq!(rejoin.to_string(), "REJOIN n1 (incarnation 2)");
    }

    #[test]
    fn commit_path_label_and_display() {
        let one = TraceEvent::CommitPath { one_phase: true, read_only: false };
        assert_eq!(one.label(), "commit-path");
        assert_eq!(one.to_string(), "FAST-PATH 1pc");
        assert!(!one.is_two_phase_commit());
        let ro = TraceEvent::CommitPath { one_phase: false, read_only: true };
        assert_eq!(ro.to_string(), "FAST-PATH read-only");
    }

    #[test]
    fn shard_events_label_and_display() {
        let map = TraceEvent::ShardMapUpdate { service: "bank".into(), version: 3 };
        assert_eq!(map.label(), "shard-map-update");
        assert_eq!(map.to_string(), "SHARD-MAP bank v3");
        assert!(!map.is_two_phase_commit());
        let start = TraceEvent::MigrationStart {
            service: "bank".into(),
            shard: 2,
            from: NodeId(1),
            to: NodeId(3),
        };
        assert_eq!(start.label(), "migration-start");
        assert_eq!(start.to_string(), "MIGRATE bank.s2 n1→n3");
        let done = TraceEvent::MigrationDone { service: "bank".into(), shard: 2, version: 4 };
        assert_eq!(done.label(), "migration-done");
        assert_eq!(done.to_string(), "MIGRATED bank.s2 (map v4)");
    }

    #[test]
    fn replication_events_label_and_display() {
        let write = TraceEvent::ReplicaWrite { shard: 1, to: NodeId(3) };
        assert_eq!(write.label(), "replica-write");
        assert_eq!(write.to_string(), "replica-write s1→n3");
        assert!(!write.is_two_phase_commit());
        let quorum = TraceEvent::ReplicaQuorum { waived: 1 };
        assert_eq!(quorum.label(), "replica-quorum");
        assert_eq!(quorum.to_string(), "QUORUM-COMMIT (1 waived)");
        let resync = TraceEvent::ReplicaResync {
            service: "bank".into(),
            shard: 2,
            from: NodeId(1),
            to: NodeId(3),
        };
        assert_eq!(resync.label(), "replica-resync");
        assert_eq!(resync.to_string(), "RESYNC bank.s2 n1→n3");
        let failover = TraceEvent::LeaderFailover {
            service: "bank".into(),
            shard: 0,
            from: NodeId(2),
            to: NodeId(1),
        };
        assert_eq!(failover.label(), "leader-failover");
        assert_eq!(failover.to_string(), "FAILOVER bank.s0 n2→n1");
    }

    #[test]
    fn batched_force_label_and_display() {
        let e = TraceEvent::LogForceBatched { lsn: 42, batch_size: 5 };
        assert_eq!(e.label(), "log-force-batched");
        assert_eq!(e.to_string(), "LOG-FORCE-BATCHED lsn=42 x5");
        assert!(!e.is_two_phase_commit());
    }

    #[test]
    fn display_is_compact() {
        let seg = SegmentId { node: NodeId(1), index: 0 };
        let e =
            TraceEvent::LockAcquire { object: ObjectId::new(seg, 8, 8), mode: "Exclusive".into() };
        assert_eq!(e.to_string(), "lock n1s0+8:8 Exclusive");
        assert_eq!(
            TraceEvent::VoteSend { to: NodeId(1), vote: Vote::ReadOnly }.to_string(),
            "VOTE(read-only)→n1"
        );
    }
}
