//! Primitive-operation counters (the Table 5-1 taxonomy).
//!
//! §5.1 of the paper: "each benchmark is substantially made up of the
//! repetitious execution of a collection of primitive operations, such as
//! disk reads or inter-node datagrams". The kernel, network and recovery
//! layers increment these counters as they execute, and the `tabs-perf`
//! crate turns count deltas into the paper's Tables 5-2, 5-3 and 5-4.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The nine primitive operations of Table 5-1, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum PrimitiveOp {
    /// Remote procedure call between an application and a data server on a
    /// single node (one coroutine instantiation per call).
    DataServerCall = 0,
    /// Data-server call across nodes, carried by a Communication Manager
    /// session.
    InterNodeDataServerCall = 1,
    /// Inter-node datagram (used by transaction management / 2PC).
    Datagram = 2,
    /// Local Accent message under 500 bytes.
    SmallContiguousMessage = 3,
    /// Local Accent message of roughly a kilobyte or more.
    LargeContiguousMessage = 4,
    /// Local message whose data travels by copy-on-write remapping.
    PointerMessage = 5,
    /// Random-access demand-paged disk read or write (512-byte page).
    RandomAccessPagedIo = 6,
    /// Sequential-access demand-paged disk read.
    SequentialRead = 7,
    /// Force of one page of log data to non-volatile (stable) storage.
    StableStorageWrite = 8,
}

/// Number of distinct primitive operations.
pub const PRIMITIVE_OP_COUNT: usize = 9;

impl PrimitiveOp {
    /// All primitive operations in Table 5-1 order.
    pub const ALL: [PrimitiveOp; PRIMITIVE_OP_COUNT] = [
        PrimitiveOp::DataServerCall,
        PrimitiveOp::InterNodeDataServerCall,
        PrimitiveOp::Datagram,
        PrimitiveOp::SmallContiguousMessage,
        PrimitiveOp::LargeContiguousMessage,
        PrimitiveOp::PointerMessage,
        PrimitiveOp::RandomAccessPagedIo,
        PrimitiveOp::SequentialRead,
        PrimitiveOp::StableStorageWrite,
    ];

    /// The row label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            PrimitiveOp::DataServerCall => "Data Server Call",
            PrimitiveOp::InterNodeDataServerCall => "Inter-Node Data Server Call",
            PrimitiveOp::Datagram => "Datagram",
            PrimitiveOp::SmallContiguousMessage => "Small Contiguous Message",
            PrimitiveOp::LargeContiguousMessage => "Large Contiguous Message",
            PrimitiveOp::PointerMessage => "Pointer Message",
            PrimitiveOp::RandomAccessPagedIo => "Random Access Paged I/O",
            PrimitiveOp::SequentialRead => "Sequential Read",
            PrimitiveOp::StableStorageWrite => "Stable Storage Write",
        }
    }
}

/// Thread-safe counters for the nine primitives, one instance per node.
#[derive(Debug, Default)]
pub struct PerfCounters {
    counts: [AtomicU64; PRIMITIVE_OP_COUNT],
}

impl PerfCounters {
    /// Creates a zeroed counter set behind an `Arc` for sharing.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one execution of `op`.
    pub fn record(&self, op: PrimitiveOp) {
        self.counts[op as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` executions of `op`.
    pub fn record_n(&self, op: PrimitiveOp, n: u64) {
        self.counts[op as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current count for `op`.
    pub fn get(&self, op: PrimitiveOp) -> u64 {
        self.counts[op as usize].load(Ordering::Relaxed)
    }

    /// Captures all counters at once.
    pub fn snapshot(&self) -> PerfSnapshot {
        let mut s = [0u64; PRIMITIVE_OP_COUNT];
        for (i, c) in self.counts.iter().enumerate() {
            s[i] = c.load(Ordering::Relaxed);
        }
        PerfSnapshot(s)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerfSnapshot(pub [u64; PRIMITIVE_OP_COUNT]);

impl PerfSnapshot {
    /// Count for one primitive.
    pub fn get(&self, op: PrimitiveOp) -> u64 {
        self.0[op as usize]
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &PerfSnapshot) -> PerfSnapshot {
        let mut d = [0u64; PRIMITIVE_OP_COUNT];
        for (i, slot) in d.iter_mut().enumerate() {
            *slot = self.0[i].saturating_sub(earlier.0[i]);
        }
        PerfSnapshot(d)
    }

    /// Counter-wise sum, used to aggregate across nodes.
    pub fn plus(&self, other: &PerfSnapshot) -> PerfSnapshot {
        let mut d = [0u64; PRIMITIVE_OP_COUNT];
        for (i, slot) in d.iter_mut().enumerate() {
            *slot = self.0[i] + other.0[i];
        }
        PerfSnapshot(d)
    }

    /// Iterates `(op, count)` pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = (PrimitiveOp, u64)> + '_ {
        PrimitiveOp::ALL.iter().map(move |&op| (op, self.get(op)))
    }

    /// Total number of primitive operations of any kind.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let c = PerfCounters::new();
        c.record(PrimitiveOp::Datagram);
        c.record_n(PrimitiveOp::SmallContiguousMessage, 4);
        let s = c.snapshot();
        assert_eq!(s.get(PrimitiveOp::Datagram), 1);
        assert_eq!(s.get(PrimitiveOp::SmallContiguousMessage), 4);
        assert_eq!(s.get(PrimitiveOp::StableStorageWrite), 0);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn since_computes_delta() {
        let c = PerfCounters::new();
        c.record(PrimitiveOp::DataServerCall);
        let before = c.snapshot();
        c.record_n(PrimitiveOp::DataServerCall, 2);
        c.record(PrimitiveOp::StableStorageWrite);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.get(PrimitiveOp::DataServerCall), 2);
        assert_eq!(delta.get(PrimitiveOp::StableStorageWrite), 1);
    }

    #[test]
    fn plus_aggregates_nodes() {
        let a = PerfSnapshot([1, 0, 2, 0, 0, 0, 0, 0, 1]);
        let b = PerfSnapshot([0, 3, 1, 0, 0, 0, 0, 0, 0]);
        let s = a.plus(&b);
        assert_eq!(s.get(PrimitiveOp::DataServerCall), 1);
        assert_eq!(s.get(PrimitiveOp::InterNodeDataServerCall), 3);
        assert_eq!(s.get(PrimitiveOp::Datagram), 3);
    }

    #[test]
    fn reset_zeroes() {
        let c = PerfCounters::new();
        c.record_n(PrimitiveOp::PointerMessage, 7);
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }

    #[test]
    fn labels_match_table_5_1() {
        assert_eq!(PrimitiveOp::ALL.len(), 9);
        assert_eq!(PrimitiveOp::ALL[0].label(), "Data Server Call");
        assert_eq!(PrimitiveOp::ALL[8].label(), "Stable Storage Write");
    }

    #[test]
    fn concurrent_recording() {
        let c = PerfCounters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record(PrimitiveOp::Datagram);
                    }
                });
            }
        });
        assert_eq!(c.get(PrimitiveOp::Datagram), 8000);
    }
}
