//! A hermetic stand-in for the `proptest` crate.
//!
//! Implements exactly the surface this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`], `any::<T>()`,
//! integer-range and `".*"` string strategies, tuples, [`Just`],
//! `prop_map`, and [`collection::vec`]. Cases are generated from a
//! deterministic per-test seed (derived from the test name), so runs are
//! reproducible. There is no shrinking: a failing case panics with the
//! standard assertion message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of test values.
    ///
    /// Unlike real proptest there is no value tree or shrinking —
    /// `generate` draws one concrete value.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Chooses uniformly among type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Integer ranges are strategies over their own element type.
    impl<T: rand::UniformInt + 'static> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// String-pattern strategy. Only the universal pattern `".*"` is
    /// honoured (the one this workspace uses): it yields a random short
    /// string of arbitrary Unicode scalar values.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let len = rng.gen_range(0usize..16);
            (0..len)
                .map(|_| loop {
                    // Bias toward ASCII but exercise wider scalars too.
                    let raw = if rng.gen_bool(0.8) {
                        rng.gen_range(0u32..128)
                    } else {
                        rng.gen_range(0u32..0x11_0000)
                    };
                    if let Some(c) = char::from_u32(raw) {
                        return c;
                    }
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    }

    /// Full-domain generation for `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem`-generated values with a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Per-test run configuration. Only `cases` is interpreted; the
    /// struct supports the `..ProptestConfig::default()` idiom.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for source compatibility; ignored (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Deterministic generator for a named test: same name, same cases.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        StdRng::seed_from_u64(h.finish() ^ 0x7ab5_0b5e_55ed_5eed)
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use rand::Rng;
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and functions whose parameters are either
/// all `pat in strategy` bindings or all plain `name: Type` (the latter
/// draw from `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            @cfg ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($config:expr)) => {};
    // `pat in strategy` parameters.
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config = $config;
            let mut __pt_rng = $crate::test_runner::rng_for(stringify!($name));
            for __pt_case in 0..__pt_config.cases {
                let _ = __pt_case;
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
    // `name: Type` parameters (drawn from `any::<Type>()`).
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config = $config;
            let mut __pt_rng = $crate::test_runner::rng_for(stringify!($name));
            for __pt_case in 0..__pt_config.cases {
                let _ = __pt_case;
                $(let $arg = $crate::strategy::Strategy::generate(
                    &$crate::strategy::any::<$ty>(),
                    &mut __pt_rng,
                );)+
                $body
            }
        }
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking, so this is plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Chooses uniformly among the given strategies, which must share a
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(v in 3u64..9, w in 0usize..4) {
            prop_assert!((3..9).contains(&v));
            prop_assert!(w < 4);
        }

        #[test]
        fn typed_args_cover_domain(x: u64, b: bool) {
            let _ = (x, b);
        }

        #[test]
        fn vec_and_tuple_and_map(
            pairs in crate::collection::vec((0u8..10, any::<bool>()), 1..5),
            op in prop_oneof![
                (0u8..5).prop_map(Op::A),
                Just(Op::B),
            ],
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 5);
            for (k, _) in &pairs {
                prop_assert!(*k < 10);
            }
            match op {
                Op::A(v) => prop_assert!(v < 5),
                Op::B => {}
            }
        }

        #[test]
        fn strings_from_pattern(s in ".*") {
            let s: String = s;
            prop_assert!(s.chars().count() < 16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        let s = crate::collection::vec(0u32..100, 3..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
