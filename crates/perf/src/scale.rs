//! Scale-out bench over the sharded bank: the same offered load on one,
//! two, four and eight nodes, with per-node stable storage modelled by
//! [`LatencyLogDevice`] so the log force is a real bottleneck.
//!
//! The log manager holds its buffer lock across the device force, so one
//! node's commits serialize on one force latency — exactly the paper's
//! stable-storage-bound regime. Spreading the service's shards over N
//! nodes multiplies the cluster's aggregate force bandwidth by N; with
//! locality-aware clients (~90% of transfers stay inside the worker's
//! home shard and commit through the single-participant 1PC fast path,
//! one force each) aggregate committed throughput scales close to
//! linearly. The gate requires >= 2x at four nodes versus one.
//!
//! Worker count and transfer mix are identical across node counts; the
//! only variable is how many nodes the four shards are spread over.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tabs_core::{Cluster, ClusterConfig, CommitPathPolicy, Node, NodeId, Tid};
use tabs_kernel::PrimitiveOp;
use tabs_shard::{Partitioning, ShardClient, ShardMap, ShardServer};
use tabs_wal::LatencyLogDevice;

use crate::report::{BenchReport, RunOpts, Workload, WorkloadOutput};

/// The sharded service name.
const SERVICE: &str = "bank";
/// Fixed shard count (spread over 1, 2, 4 or 8 nodes).
const SHARDS: u32 = 8;
/// Accounts per shard.
const SLOTS: u64 = 8;
/// Starting balance of every account.
const INITIAL_BALANCE: i64 = 100;
/// Per-force stable-storage latency the log device models.
const FORCE_LATENCY: Duration = Duration::from_micros(1000);
/// Log-device capacity (ample for the measured window).
const LOG_CAP: u64 = 64 << 20;
/// Same-shard transfers per 10 attempts; the remainder cross shards.
const LOCAL_PER_10: u64 = 9;

/// Measurements from one node-count configuration.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Nodes the eight shards were spread over.
    pub nodes: u16,
    /// Transfers committed inside the window, summed over workers.
    pub committed: u64,
    /// Transfers aborted inside the window (lock conflicts, deadlocks).
    pub aborted: u64,
    /// The measured window.
    pub elapsed: Duration,
    /// Per-transfer latencies, sorted ascending.
    pub latencies: Vec<Duration>,
    /// Inter-node datagrams over the window.
    pub datagrams: u64,
    /// Stable-storage forces over the window.
    pub forces: u64,
    /// The bank conserved its total balance after the window.
    pub invariant_ok: bool,
}

impl ScaleRun {
    /// Aggregate committed transfers per second.
    pub fn throughput(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `p`-th percentile (0–100) of transfer latency.
    pub fn percentile(&self, p: u32) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = (self.latencies.len() - 1) * p as usize / 100;
        self.latencies[idx]
    }

    /// The run as a serializable report row.
    pub fn to_report(&self, seed: u64) -> BenchReport {
        let mut r = BenchReport {
            workload: "scale".into(),
            scenario: "bank-sharded".into(),
            mode: format!("nodes/{}", self.nodes),
            duration_ms: self.elapsed.as_secs_f64() * 1e3,
            committed: self.committed,
            aborted: self.aborted,
            throughput_tps: self.throughput(),
            p50_ms: self.percentile(50).as_secs_f64() * 1e3,
            p95_ms: self.percentile(95).as_secs_f64() * 1e3,
            p99_ms: self.percentile(99).as_secs_f64() * 1e3,
            messages_per_commit: self.datagrams as f64 / (self.committed as f64).max(1.0),
            forces_per_commit: self.forces as f64 / (self.committed as f64).max(1.0),
            deadlocks_resolved: 0,
            ..BenchReport::default()
        };
        let cfg = &mut r.config;
        cfg.insert("seed".into(), seed.to_string());
        cfg.insert("shards".into(), SHARDS.to_string());
        cfg.insert("accounts".into(), (SHARDS as u64 * SLOTS).to_string());
        cfg.insert("workers".into(), SHARDS.to_string());
        cfg.insert("force_latency_us".into(), FORCE_LATENCY.as_micros().to_string());
        cfg.insert("local_per_10".into(), LOCAL_PER_10.to_string());
        cfg.insert("invariant_ok".into(), self.invariant_ok.to_string());
        r
    }
}

/// Shard-to-node assignment for `nodes` nodes: shard `s` lives on node
/// `s % nodes + 1`.
fn map_for(nodes: u16) -> ShardMap {
    ShardMap {
        service: SERVICE.into(),
        version: 1,
        partitioning: Partitioning::Hash,
        owners: (0..SHARDS).map(|s| NodeId((s as u16 % nodes) + 1)).collect(),
        replicas: vec![Vec::new(); SHARDS as usize],
    }
}

/// One worker's deterministic transfer stream, until `deadline`.
fn worker(
    app: &tabs_app_lib::AppHandle,
    client: &ShardClient,
    map: &ShardMap,
    home: u32,
    mut rng: u64,
    deadline: Instant,
) -> (u64, u64, Vec<Duration>) {
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut latencies = Vec::new();
    while Instant::now() < deadline {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = (rng >> 33) % SLOTS;
        let b = (a + 1 + (rng >> 17) % (SLOTS - 1)) % SLOTS;
        let from = map.global_key(home, a);
        // ~90% of transfers stay in the worker's home shard (one server,
        // 1PC fast path); the rest credit the next shard over (2PC).
        let to = if (rng >> 7) % 10 < LOCAL_PER_10 {
            map.global_key(home, b)
        } else {
            map.global_key((home + 1) % SHARDS, a)
        };
        let t0 = Instant::now();
        let outcome = app.begin_transaction(Tid::NULL).and_then(|t| {
            match client.add(t, from, -1).and_then(|_| client.add(t, to, 1)) {
                Ok(_) => app.end_transaction(t),
                Err(e) => {
                    let _ = app.abort_transaction(t);
                    Err(e)
                }
            }
        });
        match outcome {
            Ok(o) if o.is_committed() => {
                committed += 1;
                latencies.push(t0.elapsed());
            }
            _ => aborted += 1,
        }
    }
    (committed, aborted, latencies)
}

/// Runs the fixed worker pool against the service spread over `nodes`
/// nodes and measures aggregate committed throughput.
pub fn run_nodes(nodes: u16, window: Duration, seed: u64) -> Result<ScaleRun, String> {
    let fail = |m: String| format!("scale[nodes={nodes}] {m}");
    let map = map_for(nodes);
    let cluster =
        Cluster::with_config(ClusterConfig::default().commit_paths(CommitPathPolicy::Fast));
    for id in 1..=nodes {
        cluster.set_log_device(NodeId(id), LatencyLogDevice::new(LOG_CAP, FORCE_LATENCY));
    }
    let mut booted: Vec<Node> = Vec::new();
    for id in 1..=nodes {
        let node = cluster.boot_node(NodeId(id));
        ShardServer::spawn_all(&node, &map, SLOTS)
            .map_err(|e| fail(format!("spawn shards n{id}: {e}")))?;
        node.recover().map_err(|e| fail(format!("recover n{id}: {e}")))?;
        booted.push(node);
    }
    booted[0].ns.publish_map(SERVICE, map.version, map.to_blob());

    // Locality-aware clients: each worker runs on its home shard's owner
    // node, so its same-shard transfers are wholly local.
    let mut clients: Vec<(tabs_app_lib::AppHandle, Arc<ShardClient>)> = Vec::new();
    for shard in 0..SHARDS {
        let owner = &booted[(map.owner(shard).0 - 1) as usize];
        let client =
            ShardClient::new(owner, SERVICE).map_err(|e| fail(format!("router s{shard}: {e}")))?;
        clients.push((owner.app(), Arc::new(client)));
    }

    let (seed_app, seed_client) = &clients[0];
    seed_app
        .run(|t| {
            for key in 0..SHARDS as u64 * SLOTS {
                seed_client.set(t, key, INITIAL_BALANCE)?;
            }
            Ok(())
        })
        .map_err(|e| fail(format!("seeding failed: {e}")))?;

    let perf_before = cluster.perf_all();
    let start = Instant::now();
    let deadline = start + window;
    let results: Vec<(u64, u64, Vec<Duration>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|shard| {
                let (app, client) = &clients[shard as usize];
                let map = &map;
                scope.spawn(move || {
                    worker(app, client, map, shard, seed ^ (0x9E37 + shard as u64), deadline)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = start.elapsed();
    let delta = cluster.perf_all().since(&perf_before);

    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut latencies = Vec::new();
    for (c, a, l) in results {
        committed += c;
        aborted += a;
        latencies.extend(l);
    }
    latencies.sort();

    let expect_total = SHARDS as i64 * SLOTS as i64 * INITIAL_BALANCE;
    let total = seed_app
        .run_with_retries(5, |t| {
            let mut sum = 0i64;
            for key in 0..SHARDS as u64 * SLOTS {
                sum += seed_client.get(t, key)?;
            }
            Ok(sum)
        })
        .map_err(|e| fail(format!("invariant read failed: {e}")))?;

    let run = ScaleRun {
        nodes,
        committed,
        aborted,
        elapsed,
        latencies,
        datagrams: delta.get(PrimitiveOp::Datagram),
        forces: delta.get(PrimitiveOp::StableStorageWrite),
        invariant_ok: total == expect_total,
    };
    drop(clients);
    for n in booted {
        n.shutdown();
    }
    Ok(run)
}

/// ASCII table over the node-count runs.
pub fn render(runs: &[ScaleRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Sharded bank scale-out ({SHARDS} shards, {} accounts, {}us/force, 9:1 local:remote)\n",
        SHARDS as u64 * SLOTS,
        FORCE_LATENCY.as_micros(),
    ));
    out.push_str("nodes   committed   aborted   agg tps       p50       p95   forces/commit\n");
    out.push_str("-------------------------------------------------------------------------\n");
    for r in runs {
        out.push_str(&format!(
            "{:<7} {:>9} {:>9} {:>9.0} {:>9} {:>9} {:>15.2}\n",
            r.nodes,
            r.committed,
            r.aborted,
            r.throughput(),
            format!("{:.1?}", r.percentile(50)),
            format!("{:.1?}", r.percentile(95)),
            r.forces as f64 / (r.committed as f64).max(1.0),
        ));
    }
    out
}

/// The `tables scale` workload: the sharded bank on 1, 2, 4 and 8
/// nodes, gated on >= 2x aggregate committed throughput at four nodes.
pub struct ScaleWorkload;

impl Workload for ScaleWorkload {
    fn name(&self) -> &'static str {
        "scale"
    }

    fn describe(&self) -> &'static str {
        "sharded bank scale-out: aggregate committed tps on 1, 2, 4 and 8 nodes"
    }

    fn run(&self, opts: &RunOpts) -> Result<WorkloadOutput, String> {
        let window =
            if opts.quick { Duration::from_millis(500) } else { Duration::from_millis(1200) };
        let node_counts: &[u16] = if opts.quick { &[1, 4] } else { &[1, 2, 4, 8] };
        let mut runs = Vec::new();
        for &n in node_counts {
            runs.push(run_nodes(n, window, opts.seed)?);
        }

        let one = runs.first().ok_or("scale ran no configurations")?;
        let four = runs.iter().find(|r| r.nodes == 4).ok_or("scale never ran the 4-node point")?;
        let speedup = four.throughput() / one.throughput().max(1e-9);

        let mut out = WorkloadOutput { text: render(&runs), ..Default::default() };
        out.text.push_str(&format!(
            "\n4 nodes vs 1: {speedup:.2}x aggregate committed throughput (gate: >= 2x)\n"
        ));
        if let Some(eight) = runs.iter().find(|r| r.nodes == 8) {
            out.text.push_str(&format!(
                "8 nodes vs 1: {:.2}x aggregate committed throughput\n",
                eight.throughput() / one.throughput().max(1e-9)
            ));
        }
        for r in &runs {
            if r.committed == 0 {
                out.gate_failure = Some(format!("scale nodes={} committed no transfers", r.nodes));
            }
            if !r.invariant_ok {
                out.gate_failure =
                    Some(format!("scale nodes={} violated balance conservation", r.nodes));
            }
            out.reports.push(r.to_report(opts.seed));
        }
        if out.gate_failure.is_none() && speedup < 2.0 {
            out.gate_failure = Some(format!(
                "4 nodes delivered only {speedup:.2}x the 1-node throughput (gate: >= 2x)"
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spread_is_even_and_local_keys_stay_home() {
        for nodes in [1u16, 2, 4, 8] {
            let map = map_for(nodes);
            assert_eq!(map.shards(), SHARDS);
            for s in 0..SHARDS {
                assert!(map.owner(s).0 >= 1 && map.owner(s).0 <= nodes);
            }
            for s in 0..SHARDS {
                for slot in 0..SLOTS {
                    assert_eq!(map.shard_of(map.global_key(s, slot)), s);
                }
            }
        }
    }

    #[test]
    fn single_node_run_commits_and_conserves() {
        let r = run_nodes(1, Duration::from_millis(150), 7).unwrap_or_else(|e| panic!("{e}"));
        assert!(r.committed > 0, "no transfers committed");
        assert!(r.invariant_ok, "balance conservation violated");
    }

    #[test]
    fn scale_rows_roundtrip_byte_identically() {
        // A measured scale row must survive emit → parse → re-emit with
        // the exact same bytes, so dated bench files diff cleanly.
        let r = run_nodes(1, Duration::from_millis(120), 11).unwrap_or_else(|e| panic!("{e}"));
        let file = crate::BenchFile::new("2026-08-09", vec![r.to_report(11)]);
        let text = file.to_json();
        let parsed = crate::BenchFile::parse(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(parsed, file);
        assert_eq!(parsed.to_json(), text, "re-emitted bytes differ");
        assert_eq!(parsed.runs[0].config.get("invariant_ok").map(String::as_str), Some("true"));
    }

    #[test]
    fn four_node_run_beats_one_node_throughput() {
        let one = run_nodes(1, Duration::from_millis(400), 7).unwrap_or_else(|e| panic!("{e}"));
        let four = run_nodes(4, Duration::from_millis(400), 7).unwrap_or_else(|e| panic!("{e}"));
        assert!(one.invariant_ok && four.invariant_ok);
        assert!(
            four.throughput() > one.throughput(),
            "4 nodes ({:.0} tps) did not beat 1 node ({:.0} tps)",
            four.throughput(),
            one.throughput()
        );
    }
}
