//! The replicated directory of §4.5: weighted voting over directory
//! representatives on three nodes — "which permits one node to fail and
//! have the data remain available."
//!
//! ```text
//! cargo run -p tabs-servers --example replicated_directory
//! ```

use std::time::Duration;

use tabs_core::Cluster;
use tabs_servers::harness::boot_with;
use tabs_servers::repdir::{RepDirCoordinator, RepDirServer, Replica};

fn main() {
    let cluster = Cluster::new();
    let mut nodes = Vec::new();
    for i in 1..=3u16 {
        let (node, _rep) =
            boot_with(&cluster, i, |n| RepDirServer::spawn(n, &format!("rep{i}"), 64).unwrap());
        nodes.push(node);
    }
    println!("three directory representatives booted (weight 1 each, r = w = 2)");

    // The coordination module is linked into the client program (§4.5).
    let app = nodes[0].app();
    let mut replicas = Vec::new();
    for i in 1..=3u16 {
        let found = nodes[0].resolve(&format!("rep{i}"), 1, Duration::from_secs(3));
        replicas.push(Replica { port: found[0].0.clone(), weight: 1 });
    }
    let dir = RepDirCoordinator::new(app.clone(), replicas, 2, 2).expect("quorums");

    // Insert some directory entries (each update is a distributed
    // transaction across the write quorum, committed with tree 2PC).
    app.run(|t| {
        dir.update(t, b"alpha", b"node2:/srv/a")
            .map_err(|e| tabs_core::AppError::Rpc(e.to_string()))?;
        dir.update(t, b"beta", b"node3:/srv/b").map_err(|e| tabs_core::AppError::Rpc(e.to_string()))
    })
    .expect("initial inserts");
    println!("inserted: alpha, beta (replicated with version numbers)");

    // Crash node 3.
    println!("\n*** crashing node 3 ***");
    let n3 = nodes.pop().unwrap();
    n3.crash();

    // Reads and writes continue: any 2-of-3 quorum suffices.
    app.run(|t| {
        let v = dir
            .lookup(t, b"alpha")
            .map_err(|e| tabs_core::AppError::Rpc(e.to_string()))?
            .expect("alpha present");
        println!("lookup(alpha) with one node down -> {}", String::from_utf8_lossy(&v));
        dir.update(t, b"alpha", b"node2:/srv/a2")
            .map_err(|e| tabs_core::AppError::Rpc(e.to_string()))
    })
    .expect("update with one node down");
    println!("updated alpha to version 2 while node 3 was down");

    // Reboot node 3: it holds a stale version-1 alpha, but the version
    // numbers keep every read quorum correct.
    println!("\n*** rebooting node 3 ***");
    let (n3, _rep) = boot_with(&cluster, 3, |n| RepDirServer::spawn(n, "rep3", 64).unwrap());
    nodes.push(n3);

    app.run(|t| {
        let v = dir
            .lookup(t, b"alpha")
            .map_err(|e| tabs_core::AppError::Rpc(e.to_string()))?
            .expect("alpha present");
        println!(
            "lookup(alpha) after reboot -> {} (the stale replica was outvoted)",
            String::from_utf8_lossy(&v)
        );
        assert_eq!(v, b"node2:/srv/a2");
        Ok(())
    })
    .expect("read after reboot");

    println!("\nreplicated directory OK");
    for n in nodes {
        n.shutdown();
    }
}
