//! Integration tests: distributed transactions under crashes.
//!
//! These span the whole stack — kernel, WAL, recovery, 2PC, the
//! Communication Manager's proxies and the server library.

use std::time::Duration;

use tabs_core::{Cluster, NodeId, Tid};
use tabs_servers::IntArrayClient;

mod common;
use common::{boot_with_array, client_for};

#[test]
fn participant_crash_before_prepare_aborts_transaction() {
    let cluster = Cluster::new();
    let (n1, a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = client_for(&n1, "b");

    let t = app.begin_transaction(Tid::NULL).unwrap();
    local.set(t, 0, 1).unwrap();
    remote.set(t, 0, 2).unwrap();
    // The participant dies before the coordinator commits.
    n2.crash();
    // Commit cannot gather the vote: the transaction aborts.
    assert!(app.end_transaction(t).unwrap().is_aborted(), "commit must fail");
    // Local effects were rolled back.
    let t2 = app.begin_transaction(Tid::NULL).unwrap();
    assert_eq!(local.get(t2, 0).unwrap(), 0);
    app.end_transaction(t2).unwrap();
    n1.shutdown();
}

#[test]
fn rebooted_participant_learns_commit_outcome() {
    let cluster = Cluster::new();
    let (n1, a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = client_for(&n1, "b");

    // Run a full committed distributed transaction first.
    let t = app.begin_transaction(Tid::NULL).unwrap();
    local.set(t, 0, 10).unwrap();
    remote.set(t, 0, 20).unwrap();
    assert!(app.end_transaction(t).unwrap().is_committed());

    // Crash and reboot the participant: its durable state must hold the
    // committed remote value.
    n2.crash();
    let (n2, _a2b) = boot_with_array(&cluster, 2, "b");
    let app2 = n2.app();
    let local2 = client_for(&n2, "b");
    let t2 = app2.begin_transaction(Tid::NULL).unwrap();
    assert_eq!(local2.get(t2, 0).unwrap(), 20);
    app2.end_transaction(t2).unwrap();
    n1.shutdown();
    n2.shutdown();
}

#[test]
fn three_node_commit_survives_participant_reboot() {
    let cluster = Cluster::new();
    let (n1, a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let (n3, _a3) = boot_with_array(&cluster, 3, "c");
    let app = n1.app();
    let ca = IntArrayClient::new(app.clone(), a1.send_right());
    let cb = client_for(&n1, "b");
    let cc = client_for(&n1, "c");

    let t = app.begin_transaction(Tid::NULL).unwrap();
    ca.set(t, 0, 1).unwrap();
    cb.set(t, 0, 2).unwrap();
    cc.set(t, 0, 3).unwrap();
    assert!(app.end_transaction(t).unwrap().is_committed());

    // Both participants reboot; durable values persist.
    n2.crash();
    n3.crash();
    let (n2, _b2) = boot_with_array(&cluster, 2, "b");
    let (n3, _c2) = boot_with_array(&cluster, 3, "c");
    for (node, want) in [(&n2, 2i64), (&n3, 3i64)] {
        let app = node.app();
        let name = if want == 2 { "b" } else { "c" };
        let client = client_for(node, name);
        let t = app.begin_transaction(Tid::NULL).unwrap();
        assert_eq!(client.get(t, 0).unwrap(), want);
        app.end_transaction(t).unwrap();
    }
    n1.shutdown();
    n2.shutdown();
    n3.shutdown();
}

#[test]
fn repeated_crashes_converge() {
    // Crash the same node three times with mixed committed/uncommitted
    // work; every recovery must land on exactly the committed state.
    let cluster = Cluster::new();
    let mut expected: i64 = 0;
    for round in 1..=3 {
        let (node, arr) = boot_with_array(&cluster, 1, "data");
        let app = node.app();
        let client = IntArrayClient::new(app.clone(), arr.send_right());
        // Check the carried-over value first.
        let t = app.begin_transaction(Tid::NULL).unwrap();
        assert_eq!(client.get(t, 0).unwrap(), expected, "round {round}");
        app.end_transaction(t).unwrap();
        // One committed update.
        expected = round * 100;
        let exp = expected;
        app.run(|t| client.set(t, 0, exp)).unwrap();
        // One uncommitted update rides into the crash.
        let t = app.begin_transaction(Tid::NULL).unwrap();
        client.set(t, 0, -1).unwrap();
        node.rm.force(None).unwrap();
        drop(arr);
        node.crash();
    }
    let (node, arr) = boot_with_array(&cluster, 1, "data");
    let app = node.app();
    let client = IntArrayClient::new(app.clone(), arr.send_right());
    let t = app.begin_transaction(Tid::NULL).unwrap();
    assert_eq!(client.get(t, 0).unwrap(), 300);
    app.end_transaction(t).unwrap();
    node.shutdown();
}

#[test]
fn lossy_network_still_commits() {
    // 2PC datagrams are retransmitted, so a moderately lossy network only
    // slows commit down.
    let cluster = Cluster::with_config(
        tabs_core::ClusterConfig::default()
            .net(tabs_core::NetConfig::default().datagram_loss(0.3).seed(7)),
    );
    let (n1, a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = client_for(&n1, "b");
    for i in 0..5 {
        let t = app.begin_transaction(Tid::NULL).unwrap();
        local.set(t, 0, i).unwrap();
        remote.set(t, 0, i).unwrap();
        assert!(app.end_transaction(t).unwrap().is_committed(), "iteration {i}");
    }
    n1.shutdown();
    n2.shutdown();
}

#[test]
fn partition_blocks_commit_then_heals() {
    let cluster = Cluster::new();
    let (n1, a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = client_for(&n1, "b");

    // Do remote work, then partition before commit.
    let t = app.begin_transaction(Tid::NULL).unwrap();
    local.set(t, 0, 5).unwrap();
    remote.set(t, 0, 5).unwrap();
    cluster.network().partition(NodeId(1), NodeId(2));
    // Votes cannot arrive: the coordinator aborts after its deadline.
    assert!(app.end_transaction(t).unwrap().is_aborted());

    // After healing, a fresh transaction commits normally.
    cluster.network().heal(NodeId(1), NodeId(2));
    let t2 = app.begin_transaction(Tid::NULL).unwrap();
    local.set(t2, 0, 6).unwrap();
    remote.set(t2, 0, 6).unwrap();
    assert!(app.end_transaction(t2).unwrap().is_committed());
    n1.shutdown();
    n2.shutdown();
}

#[test]
fn subtransaction_with_remote_work_merges_into_parent_commit() {
    // §2.1.3 + §3.2.3: a subtransaction performs operations on a remote
    // node, commits into its parent, and the parent's top-level 2PC must
    // carry the subtransaction's tid (the merged set) so the remote
    // participant prepares and commits that work too.
    let cluster = Cluster::new();
    let (n1, a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = client_for(&n1, "b");

    let top = app.begin_transaction(Tid::NULL).unwrap();
    local.set(top, 0, 1).unwrap();

    // The subtransaction does the remote write.
    let sub = app.begin_transaction(top).unwrap();
    remote.set(sub, 0, 2).unwrap();
    assert!(app.end_transaction(sub).unwrap().is_committed(), "subtransaction commits into parent");

    assert!(app.end_transaction(top).unwrap().is_committed(), "top-level 2PC commits");

    // The remote value is durable and visible.
    let t = app.begin_transaction(Tid::NULL).unwrap();
    assert_eq!(remote.get(t, 0).unwrap(), 2);
    app.end_transaction(t).unwrap();

    // The remote node wrote Begin(sub, parent=top) + Prepare + Commit:
    // its log can recover the subtransaction's work under the top tid.
    let recs = n2.rm.log().durable_entries();
    assert!(recs.iter().any(
        |e| matches!(e.record, tabs_wal::LogRecord::Begin { tid, parent } if tid == sub && parent == top)
    ), "remote node learned the subtransaction's ancestry at prepare time");

    // Crash the remote node and recover: the committed remote value holds.
    n2.crash();
    let (n2, _b) = boot_with_array(&cluster, 2, "b");
    let app2 = n2.app();
    let local2 = client_for(&n2, "b");
    let t = app2.begin_transaction(Tid::NULL).unwrap();
    assert_eq!(local2.get(t, 0).unwrap(), 2, "subtransaction work survived the crash");
    app2.end_transaction(t).unwrap();
    n1.shutdown();
    n2.shutdown();
}

#[test]
fn aborted_subtransaction_remote_work_rolled_back_while_parent_commits() {
    let cluster = Cluster::new();
    let (n1, a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = client_for(&n1, "b");

    let top = app.begin_transaction(Tid::NULL).unwrap();
    local.set(top, 0, 7).unwrap();
    let sub = app.begin_transaction(top).unwrap();
    remote.set(sub, 0, 99).unwrap();
    app.abort_transaction(sub).unwrap();
    // The parent tolerates the subtransaction failure and commits.
    assert!(app.end_transaction(top).unwrap().is_committed());

    // Remote work of the aborted subtransaction is gone (poll: the abort
    // datagram propagates asynchronously).
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    loop {
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let v = remote.get(t, 0);
        let _ = app.end_transaction(t);
        match v {
            Ok(0) => break,
            Ok(other) => panic!("remote shows {other}, expected rollback to 0"),
            Err(_) => {
                assert!(std::time::Instant::now() < deadline, "remote abort never landed");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Parent's local work committed.
    let t = app.begin_transaction(Tid::NULL).unwrap();
    assert_eq!(local.get(t, 0).unwrap(), 7);
    app.end_transaction(t).unwrap();
    n1.shutdown();
    n2.shutdown();
}

#[test]
fn stale_proxy_after_remote_restart_is_recoverable() {
    // §3.1.3: data servers are "permanent entities that must persist
    // despite node failures, even though the ports through which they are
    // accessed change." After the remote node reboots, the old proxy's
    // target port is gone; invalidating the name and re-resolving finds
    // the re-registered server.
    let cluster = Cluster::new();
    let (n1, _a1) = boot_with_array(&cluster, 1, "a");
    let (n2, _a2) = boot_with_array(&cluster, 2, "b");
    let app = n1.app();
    let remote = client_for(&n1, "b");
    app.run(|t| remote.set(t, 0, 5)).unwrap();

    // The remote node restarts: same permanent data, fresh ports.
    n2.crash();
    let (n2, _b2) = boot_with_array(&cluster, 2, "b");

    // The old proxy now points at a dead port on the rebooted node.
    let t = app.begin_transaction(Tid::NULL).unwrap();
    assert!(remote.get(t, 0).is_err(), "stale proxy fails visibly");
    app.abort_transaction(t).unwrap();

    // Invalidate the cached name and re-resolve: service restored, and
    // the committed value survived the reboot.
    n1.ns.invalidate("b");
    let fresh = client_for(&n1, "b");
    let t = app.begin_transaction(Tid::NULL).unwrap();
    assert_eq!(fresh.get(t, 0).unwrap(), 5);
    app.end_transaction(t).unwrap();
    n1.shutdown();
    n2.shutdown();
}
