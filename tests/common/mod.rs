//! Helpers shared by the cross-crate integration suites.
//!
//! The cluster-building implementations live in `tabs_servers::harness`
//! so the perf scenarios use the same code; this module re-exports them
//! for the test binaries and adds the [`AccountingMeter`], the
//! message/force-accounting oracle the fast-path and group-commit suites
//! assert exact per-commit costs with. Each suite is compiled as its own
//! test binary, so not every helper is used by every binary.
#![allow(unused_imports, dead_code)]

use std::sync::Arc;

use tabs_core::{Cluster, MetricsSnapshot};
use tabs_kernel::{NodeId, PerfSnapshot, PrimitiveOp};

pub use tabs_servers::harness::{
    boot_with_array, boot_with_array_cells, client_for, spawn_suite, ServerSuite,
};

/// Exact message/force accounting over a measured window, per node.
///
/// Wraps each node's Table 5-1 primitive counters and its named-counter
/// registry into before/after deltas, so a test can assert "this
/// workload cost exactly N datagrams and M forces on node k" instead of
/// eyeballing totals that include boot and seeding noise. Start the
/// meter after setup, run the workload, then read [`AccountingMeter::delta`].
pub struct AccountingMeter {
    cluster: Arc<Cluster>,
    nodes: Vec<NodeId>,
    perf_before: Vec<PerfSnapshot>,
    metrics_before: Vec<MetricsSnapshot>,
}

/// One node's accounting deltas over the meter's window.
pub struct NodeAccounting {
    /// The node measured.
    pub node: NodeId,
    /// Inter-node datagrams this node sent during the window.
    pub datagrams: u64,
    /// Stable-storage forces this node paid during the window.
    pub forces: u64,
    primitives: PerfSnapshot,
    metrics_before: MetricsSnapshot,
    metrics_now: MetricsSnapshot,
}

impl NodeAccounting {
    /// Delta of any Table 5-1 primitive-operation count.
    pub fn primitive(&self, op: PrimitiveOp) -> u64 {
        self.primitives.get(op)
    }

    /// Delta of a named metrics counter (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics_now.counter(name) - self.metrics_before.counter(name)
    }
}

impl AccountingMeter {
    /// Starts a window over `nodes`, snapshotting their counters now.
    pub fn start(cluster: &Arc<Cluster>, nodes: &[NodeId]) -> Self {
        Self {
            cluster: Arc::clone(cluster),
            nodes: nodes.to_vec(),
            perf_before: nodes.iter().map(|&id| cluster.perf(id).snapshot()).collect(),
            metrics_before: nodes.iter().map(|&id| cluster.metrics(id).snapshot()).collect(),
        }
    }

    /// The per-node deltas since [`AccountingMeter::start`], in the
    /// node order given there. The window stays open: calling again
    /// returns fresh deltas against the same start point.
    pub fn delta(&self) -> Vec<NodeAccounting> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let primitives = self.cluster.perf(id).snapshot().since(&self.perf_before[i]);
                NodeAccounting {
                    node: id,
                    datagrams: primitives.get(PrimitiveOp::Datagram),
                    forces: primitives.get(PrimitiveOp::StableStorageWrite),
                    primitives,
                    metrics_before: self.metrics_before[i].clone(),
                    metrics_now: self.cluster.metrics(id).snapshot(),
                }
            })
            .collect()
    }

    /// Sum of datagram deltas across all metered nodes.
    pub fn total_datagrams(&self) -> u64 {
        self.delta().iter().map(|d| d.datagrams).sum()
    }

    /// Sum of force deltas across all metered nodes.
    pub fn total_forces(&self) -> u64 {
        self.delta().iter().map(|d| d.forces).sum()
    }
}
