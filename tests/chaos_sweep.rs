//! Chaos sweep: every registered crash point, armed one scenario at a
//! time (plus coordinator+participant double kills), must actually kill a
//! node somewhere in the sweep, and every scenario must recover to a
//! state the invariant oracle accepts.
//!
//! Any failure message printed here starts with `seed=<N>
//! crash_point=<name>` — rerun with that seed to replay the exact
//! scenario.

use std::collections::BTreeSet;

use tabs_chaos::{
    registry, ChaosRunner, FASTPATH_POINTS, GROUP_COMMIT_POINTS, MIGRATION_POINTS,
    REPLICATION_POINTS, SINGLE_NODE_POINTS,
};

/// Fixed sweep seed: sweeps are exhaustive over crash points, so the seed
/// only picks the disk-fault RNG streams; any value must pass.
const SEED: u64 = 0xC4A0_05ED;

#[test]
fn crash_point_sweeps_cover_the_entire_registry() {
    let runner = ChaosRunner::new(SEED);

    let single = runner.sweep_single_node().unwrap_or_else(|e| panic!("{e}"));
    for &p in SINGLE_NODE_POINTS {
        assert!(
            single.contains(p),
            "seed={SEED} crash_point={p} armed on the bank workload but never killed the node"
        );
    }

    let group = runner.sweep_group_commit().unwrap_or_else(|e| panic!("{e}"));
    for &p in GROUP_COMMIT_POINTS {
        assert!(
            group.contains(p),
            "seed={SEED} crash_point={p} armed on the group-commit workload but never killed \
             the node"
        );
    }

    let fastpath = runner.sweep_fastpath().unwrap_or_else(|e| panic!("{e}"));
    for &p in FASTPATH_POINTS {
        assert!(
            fastpath.contains(p),
            "seed={SEED} crash_point={p} armed on the 1PC fast-path workload but never killed \
             the node"
        );
    }

    let distributed = runner.sweep_distributed().unwrap_or_else(|e| panic!("{e}"));

    let migration = runner.sweep_migration().unwrap_or_else(|e| panic!("{e}"));
    for &p in MIGRATION_POINTS {
        assert!(
            migration.contains(p),
            "seed={SEED} crash_point={p} armed on the shard-migration workload but never \
             killed a node"
        );
    }

    let replication = runner.sweep_replication().unwrap_or_else(|e| panic!("{e}"));
    for &p in REPLICATION_POINTS {
        assert!(
            replication.contains(p),
            "seed={SEED} crash_point={p} armed on the replicated-shard workload but never \
             killed a node"
        );
    }

    // The acceptance gate: the union of points that actually killed a
    // node must equal the registry. A registered point no sweep can reach
    // is a test failure, not a silent gap.
    let mut killed: BTreeSet<&str> = single.into_iter().collect();
    killed.extend(group);
    killed.extend(fastpath);
    killed.extend(distributed);
    killed.extend(migration);
    killed.extend(replication);
    let reg: BTreeSet<&str> = registry().into_iter().collect();
    let missing: Vec<&&str> = reg.difference(&killed).collect();
    assert!(
        missing.is_empty(),
        "seed={SEED} crash_point=none registered crash points never killed a node: {missing:?}"
    );
    let unregistered: Vec<&&str> = killed.difference(&reg).collect();
    assert!(
        unregistered.is_empty(),
        "seed={SEED} crash_point=none kills at unregistered points: {unregistered:?}"
    );
}

#[test]
fn torn_sector_write_is_repaired_by_recovery() {
    ChaosRunner::new(SEED).torn_write_scenario().unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn transient_read_errors_fail_visibly_then_clear() {
    ChaosRunner::new(SEED).transient_read_scenario().unwrap_or_else(|e| panic!("{e}"));
}
