//! TABS node assembly and multi-node cluster harness (Figure 3-1).
//!
//! "At each node, there is one instance of the TABS facilities and one or
//! more user-programmed data servers and/or applications. … The TABS
//! facilities are made up of four processes … called Name Server,
//! Communication Manager, Recovery Manager, and Transaction Manager."
//!
//! A [`Cluster`] owns everything that survives node crashes: the network,
//! the disk registry, log devices, segment tables and node incarnation
//! counters. [`Cluster::boot_node`] assembles a [`Node`] — kernel, buffer
//! pool, the four system components, and application handles. Crashing a
//! node ([`Node::crash`]) discards all volatile state; re-booting it runs
//! crash recovery against the surviving non-volatile storage.
//!
//! This crate is also the facade: it re-exports the subsystem crates under
//! one roof (see [`prelude`]).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

pub use tabs_app_lib::{AppError, AppHandle, CommitOutcome};
pub use tabs_cm::{CommManager, FailureDetector, HeartbeatConfig};
pub use tabs_detect::{DetectConfig, Detector};
pub use tabs_kernel::{
    BufferPool, DiskRegistry, FileDisk, Kernel, MemDisk, NodeId, ObjectId, PageId, PerfCounters,
    PortId, SegmentId, SegmentSpec, Tid,
};
pub use tabs_net::{NetConfig, Network};
pub use tabs_ns::NameServer;
pub use tabs_obs::{
    KernelTraceBridge, Metrics, MetricsSnapshot, Timeline, TraceCollector, TraceEvent, TraceRecord,
};
pub use tabs_proto::{Deadline, DeadlinePolicy, RetryBudget, RetryPolicy};
pub use tabs_rm::{RecoveryManager, RecoveryReport};
pub use tabs_server_lib::{DataServer, Dispatch, OpCtx, ServerConfig, ServerDeps};
pub use tabs_tm::{CommitPathPolicy, ReplicationPolicy, TmTimeouts, TransactionManager};
pub use tabs_wal::GroupCommitConfig;

/// Commonly used items for applications and data servers.
pub mod prelude {
    pub use crate::{Cluster, ClusterConfig, CommitPathPolicy, GroupCommitConfig, Node};
    pub use tabs_app_lib::{AppError, AppHandle, CommitOutcome};
    pub use tabs_cm::{FailureDetector, HeartbeatConfig};
    pub use tabs_detect::{DetectConfig, Detector};
    pub use tabs_kernel::{NodeId, ObjectId, PerfCounters, SegmentId, Tid, PAGE_SIZE};
    pub use tabs_lock::{DeadlockPolicy, StdMode};
    pub use tabs_net::{NetConfig, Network};
    pub use tabs_obs::{Metrics, MetricsSnapshot, Timeline, TraceCollector, TraceEvent};
    pub use tabs_proto::ServerError;
    pub use tabs_server_lib::{DataServer, Dispatch, OpCtx, ServerConfig, ServerDeps};
}

/// Per-node persistent name → (segment index, pages) table.
type SegTable = HashMap<String, (u32, u32)>;

/// Cluster-wide configuration. Construct with [`ClusterConfig::default`]
/// and the builder methods; the struct is `#[non_exhaustive]` so new knobs
/// can be added without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClusterConfig {
    /// Buffer-pool frames per node. The paper's Perq held roughly a third
    /// of the 5000-page benchmark array, hence the default.
    pub pool_pages: usize,
    /// Log device capacity in bytes.
    pub log_capacity: u64,
    /// Network behaviour.
    pub net: NetConfig,
    /// Default lock time-out handed to data servers.
    pub lock_timeout: Duration,
    /// Lock-table stripe count handed to data servers (1 reproduces the
    /// original single-mutex lock table).
    pub lock_stripes: usize,
    /// When set, recoverable segments and logs live in real files under
    /// this directory (surviving even process restarts); otherwise they
    /// use in-memory devices that survive only simulated node crashes.
    pub storage_dir: Option<std::path::PathBuf>,
    /// When true, booting a node installs a [`TraceCollector`] and wires
    /// every subsystem's trace hooks, so [`Cluster::timeline`] can render
    /// per-transaction swimlanes.
    pub trace: bool,
    /// When true, every booted node runs a distributed deadlock
    /// [`Detector`]: cross-node waits-for cycles are found by edge-chasing
    /// probes and broken promptly instead of waiting out the lock
    /// time-out (which remains the backstop).
    pub detect: bool,
    /// When set, commit-path log forces (commit and prepare records) go
    /// through the group-commit scheduler: concurrent committers share
    /// one device force, bounded by the window's max delay and max batch.
    /// `None` (the default) keeps the seed behaviour — one force per
    /// committing transaction.
    pub group_commit: Option<GroupCommitConfig>,
    /// When set, every booted node runs a heartbeat [`FailureDetector`]:
    /// silent peers are suspected, in-doubt transactions whose coordinator
    /// is suspected resolve through cooperative termination, transactions
    /// spanning a suspected child abort instead of hanging, and calls to
    /// suspects fail fast with a typed retryable error. `None` (the
    /// default) keeps the seed behaviour — time-outs only.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Commit-path selection for every booted node's Transaction Manager:
    /// [`CommitPathPolicy::Seed`] (the default) keeps the historical path
    /// byte for byte, `Fast` labels and instruments the 1PC / read-only
    /// fast paths, `Full` runs the pessimistic full-2PC baseline the
    /// `fastpath` bench compares against.
    pub commit_paths: CommitPathPolicy,
    /// When set, every booted node's Transaction Manager treats a
    /// registered replica set as one logical 2PC participant: missing
    /// votes from suspected-dead members are waived once a majority of
    /// their group is durably prepared, and phase-2 acknowledgements
    /// from dead members are abandoned instead of chased (the rejoining
    /// member resolves the outcome from the durable decision record).
    /// `None` (the default) keeps the seed behaviour — every enlisted
    /// participant must vote.
    pub replication: Option<ReplicationPolicy>,
    /// When set, every top-level transaction begun through [`Node::app`]
    /// is assigned the policy's end-to-end budget as an absolute
    /// deadline that rides its calls: servers reject expired work before
    /// touching objects, lock waits cap at the remaining budget, and the
    /// Transaction Manager aborts commits it cannot finish in time.
    /// `None` (the default) keeps the seed behaviour — no deadline field
    /// on the wire, byte-identical request encodings.
    pub deadlines: Option<DeadlinePolicy>,
    /// When set, every data server built from [`Node::server_config`] /
    /// [`Node::deps`] caps its in-flight transactions at this limit and
    /// sheds excess new work with `ServerError::Overloaded` before lock
    /// acquisition. `None` (the default) accepts unboundedly.
    pub admission_limit: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            pool_pages: 1536,
            log_capacity: 64 << 20,
            net: NetConfig::default(),
            lock_timeout: Duration::from_millis(300),
            lock_stripes: tabs_lock::DEFAULT_LOCK_STRIPES,
            storage_dir: None,
            trace: false,
            detect: false,
            group_commit: None,
            heartbeat: None,
            commit_paths: CommitPathPolicy::Seed,
            replication: None,
            deadlines: None,
            admission_limit: None,
        }
    }
}

impl ClusterConfig {
    /// Sets the buffer-pool frame count per node.
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Sets the log device capacity in bytes.
    pub fn log_capacity(mut self, bytes: u64) -> Self {
        self.log_capacity = bytes;
        self
    }

    /// Sets the network behaviour.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the default lock time-out handed to data servers.
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Sets the lock-table stripe count handed to data servers.
    pub fn lock_stripes(mut self, stripes: usize) -> Self {
        self.lock_stripes = stripes.max(1);
        self
    }

    /// Puts recoverable segments and logs in real files under `dir`.
    pub fn storage_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.storage_dir = Some(dir.into());
        self
    }

    /// Enables (or disables) transaction tracing on every booted node.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Enables (or disables) distributed deadlock detection on every
    /// booted node.
    pub fn deadlock_detection(mut self, enabled: bool) -> Self {
        self.detect = enabled;
        self
    }

    /// Enables group commit: commit-path log forces on every booted node
    /// are batched under `cfg`'s window.
    pub fn group_commit(mut self, cfg: GroupCommitConfig) -> Self {
        self.group_commit = Some(cfg);
        self
    }

    /// Enables the heartbeat failure detector (and with it cooperative
    /// 2PC termination and fail-fast remote calls) on every booted node.
    pub fn heartbeat(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeat = Some(cfg);
        self
    }

    /// Selects the commit-path policy for every booted node.
    pub fn commit_paths(mut self, policy: CommitPathPolicy) -> Self {
        self.commit_paths = policy;
        self
    }

    /// Enables the replicated-participant commit integration (majority
    /// vote waiver and dead-member ack abandonment) on every booted node.
    /// Quorum groups themselves are registered per node from the shard
    /// map (see `tabs_shard::ShardServer::spawn_all`).
    pub fn replication(mut self, policy: ReplicationPolicy) -> Self {
        self.replication = Some(policy);
        self
    }

    /// Assigns every top-level transaction an end-to-end deadline budget.
    pub fn deadlines(mut self, policy: DeadlinePolicy) -> Self {
        self.deadlines = Some(policy);
        self
    }

    /// Caps in-flight transactions per data server; excess new work is
    /// shed with `ServerError::Overloaded` before lock acquisition.
    pub fn admission_limit(mut self, limit: usize) -> Self {
        self.admission_limit = Some(limit.max(1));
        self
    }
}

/// Everything that survives node crashes, plus the wire between nodes.
pub struct Cluster {
    net: Network,
    disks: Arc<DiskRegistry>,
    log_devices: Mutex<HashMap<NodeId, Arc<dyn tabs_wal::LogDevice>>>,
    /// Persistent name → (segment index, pages) tables per node, so a
    /// restarted node maps the same segments to the same identifiers.
    seg_tables: Mutex<HashMap<NodeId, SegTable>>,
    incarnations: Mutex<HashMap<NodeId, u32>>,
    perfs: Mutex<HashMap<NodeId, Arc<PerfCounters>>>,
    traces: Mutex<HashMap<NodeId, Arc<TraceCollector>>>,
    metrics: Mutex<HashMap<NodeId, Arc<Metrics>>>,
    /// Durable anchor for versioned shard maps: service → (version,
    /// encoded map). Models the replicated cluster-configuration store a
    /// real deployment would keep the placement map in; like `disks` and
    /// `seg_tables` it survives node crashes, so a rebooted node's Name
    /// Server is re-seeded with the newest committed map and a stale old
    /// owner can never serve a migrated shard again.
    shard_maps: Mutex<HashMap<String, (u64, Vec<u8>)>>,
    config: ClusterConfig,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster").field("net", &self.net).finish()
    }
}

impl Cluster {
    /// Creates a cluster with default configuration.
    pub fn new() -> Arc<Self> {
        Self::with_config(ClusterConfig::default())
    }

    /// Creates a cluster with explicit configuration.
    pub fn with_config(config: ClusterConfig) -> Arc<Self> {
        Arc::new(Self {
            net: Network::with_config(config.net.clone()),
            disks: DiskRegistry::new(),
            log_devices: Mutex::new(HashMap::new()),
            seg_tables: Mutex::new(HashMap::new()),
            incarnations: Mutex::new(HashMap::new()),
            perfs: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            metrics: Mutex::new(HashMap::new()),
            shard_maps: Mutex::new(HashMap::new()),
            config,
        })
    }

    /// The shared network (for partitions and fault injection).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The cluster's disk registry. Fault-injection harnesses pre-register
    /// wrapped disks here (under `"{node}.{segment}"` names) before the
    /// segment is created, so every write goes through the wrapper.
    pub fn disks(&self) -> &Arc<DiskRegistry> {
        &self.disks
    }

    /// Pre-installs the log device `node` will use at its next boot
    /// (replacing any existing device). Fault-injection harnesses use this
    /// to slide a fault-injecting device under the write-ahead log.
    pub fn set_log_device(&self, id: NodeId, dev: Arc<dyn tabs_wal::LogDevice>) {
        self.log_devices.lock().insert(id, dev);
    }

    /// Commits a shard map to the cluster's durable map store iff
    /// `version` is strictly newer than the stored one. This is the
    /// linearization point of a shard-ownership change: migration engines
    /// call it *after* the shard's data is durably copied and *before*
    /// announcing the new map through the Name Servers, so a crash
    /// anywhere in between leaves either the old complete placement or
    /// the new complete placement, never a split. Returns whether the map
    /// was committed.
    pub fn commit_shard_map(&self, service: &str, version: u64, map: Vec<u8>) -> bool {
        let mut maps = self.shard_maps.lock();
        match maps.get(service) {
            Some((held, _)) if *held >= version => false,
            _ => {
                maps.insert(service.to_string(), (version, map));
                true
            }
        }
    }

    /// The newest durably committed `(version, encoded-map)` for
    /// `service`, if any.
    pub fn shard_map(&self, service: &str) -> Option<(u64, Vec<u8>)> {
        self.shard_maps.lock().get(service).cloned()
    }

    /// Per-node primitive counters (persistent across restarts so that
    /// benchmark measurements span crashes).
    pub fn perf(&self, id: NodeId) -> Arc<PerfCounters> {
        Arc::clone(self.perfs.lock().entry(id).or_default())
    }

    /// Per-node trace collector (created on first use, persistent across
    /// node restarts so one timeline can span crashes). Events are only
    /// fed into it when the cluster was configured with
    /// [`ClusterConfig::trace`].
    pub fn trace(&self, id: NodeId) -> Arc<TraceCollector> {
        Arc::clone(
            self.traces
                .lock()
                .entry(id)
                .or_insert_with(|| TraceCollector::new(id, tabs_obs::DEFAULT_TRACE_CAPACITY)),
        )
    }

    /// Per-node metric registry, wrapping the node's [`PerfCounters`] so
    /// the nine Table 5-1 primitive counters stay the single source of
    /// truth.
    pub fn metrics(&self, id: NodeId) -> Arc<Metrics> {
        let perf = self.perf(id);
        Arc::clone(self.metrics.lock().entry(id).or_insert_with(|| Metrics::new(perf)))
    }

    /// A merged, causally ordered timeline over every node traced so far.
    pub fn timeline(&self) -> Timeline {
        let collectors: Vec<Arc<TraceCollector>> = self.traces.lock().values().cloned().collect();
        Timeline::from_collectors(&collectors)
    }

    /// Aggregated counter snapshot across all nodes ever booted.
    pub fn perf_all(&self) -> tabs_kernel::PerfSnapshot {
        let perfs = self.perfs.lock();
        let mut total = tabs_kernel::PerfSnapshot::default();
        for p in perfs.values() {
            total = total.plus(&p.snapshot());
        }
        total
    }

    /// Boots (or re-boots) a node. After booting, register segments and
    /// data servers, then call [`Node::recover`] before serving requests.
    pub fn boot_node(self: &Arc<Self>, id: NodeId) -> Node {
        let incarnation = {
            let mut inc = self.incarnations.lock();
            let v = inc.entry(id).or_insert(0);
            *v += 1;
            *v
        };
        let perf = self.perf(id);
        let kernel = Kernel::with_counters_epoch(id, Arc::clone(&perf), incarnation);
        let pool = BufferPool::new(self.config.pool_pages, Arc::clone(&perf));
        let log_device = {
            let mut devs = self.log_devices.lock();
            match devs.get(&id) {
                Some(d) => Arc::clone(d),
                None => {
                    let dev: Arc<dyn tabs_wal::LogDevice> = match &self.config.storage_dir {
                        Some(dir) => {
                            std::fs::create_dir_all(dir).expect("storage dir");
                            tabs_wal::FileLogDevice::open(
                                &dir.join(format!("{id}.log")),
                                self.config.log_capacity,
                            )
                            .expect("log file")
                        }
                        None => tabs_wal::MemLogDevice::new(self.config.log_capacity),
                    };
                    devs.insert(id, Arc::clone(&dev));
                    dev
                }
            }
        };
        let log =
            tabs_wal::LogManager::open(log_device, Arc::clone(&perf)).expect("log device scan");
        if let Some(gc) = self.config.group_commit {
            log.set_group_commit(Some(gc));
            let metrics = self.metrics(id);
            log.set_group_metrics(
                metrics.counter("wal.group.batches"),
                metrics.counter("wal.group.batched_commits"),
            );
        }
        let rm = RecoveryManager::new(id, log, Arc::clone(&pool), Arc::clone(&perf));
        pool.set_gate(rm.gate());
        let tm = TransactionManager::new(id, incarnation, Arc::clone(&rm), Arc::clone(&perf));
        if self.config.commit_paths != CommitPathPolicy::Seed {
            tm.set_commit_paths(self.config.commit_paths);
            if self.config.commit_paths == CommitPathPolicy::Fast {
                let metrics = self.metrics(id);
                tm.set_fastpath_metrics(
                    metrics.counter("tm.commit.1pc"),
                    metrics.counter("tm.prepare.readonly"),
                );
            }
        }
        if let Some(policy) = self.config.replication {
            tm.set_replication(policy);
            let metrics = self.metrics(id);
            tm.set_replication_metrics(
                metrics.counter("tm.rep.quorum_commits"),
                metrics.counter("tm.rep.acks_abandoned"),
            );
        }
        if self.config.deadlines.is_some() {
            tm.set_deadline_metrics(self.metrics(id).counter("deadline.expired"));
        }
        let ns = NameServer::new(id);
        // Seed the fresh Name Server from the durable map store: a node
        // that crashed mid-migration reboots already knowing the newest
        // committed shard placement, so it fences itself off shards it
        // lost while down instead of serving stale data.
        for (service, (version, map)) in self.shard_maps.lock().iter() {
            ns.adopt_map(service, *version, map.clone());
        }
        let endpoint = self.net.attach(id, Arc::clone(&perf));
        // Datagrams dropped on their way to this node (loss, partitions,
        // chaos schedules, or dying with a detached inbox) are visible in
        // the node's metric registry.
        self.net.install_drop_counter(id, self.metrics(id).counter("net.datagram.dropped"));
        let trace = self.config.trace.then(|| self.trace(id));
        if let Some(t) = &trace {
            // Wire every layer's hook to the one per-node collector: the
            // kernel pager and port space, the write-ahead log (via the
            // Recovery Manager), the commit protocol, and the wire.
            let bridge = KernelTraceBridge::new(Arc::clone(t));
            kernel.set_trace(bridge.clone());
            pool.set_trace(bridge);
            rm.set_trace(Arc::clone(t));
            tm.set_trace(Arc::clone(t));
            endpoint.set_trace(Arc::clone(t));
        }
        let detect = self.config.detect.then(|| {
            let d = Detector::new(id, Arc::clone(&tm) as _, DetectConfig::default());
            if let Some(t) = &trace {
                d.set_trace(Arc::clone(t));
            }
            d
        });
        let fd = self.config.heartbeat.map(|hb| {
            let f = FailureDetector::new(id, hb);
            if let Some(t) = &trace {
                f.set_trace(Arc::clone(t));
            }
            // Watch every node currently on the wire; nodes that boot
            // later are picked up from their first heartbeat.
            for peer in self.net.attached_nodes() {
                f.watch(peer);
            }
            // With a detector present, in-doubt transactions resolve
            // cooperatively instead of waiting out retransmit time-outs.
            tm.set_cooperative_termination(true);
            f
        });
        if incarnation > 1 {
            // A reboot on the same durable disks: make the rejoin visible
            // in the timeline (the epoch bump keeps new Tids unique).
            if let Some(t) = &trace {
                t.record(Tid::NULL, TraceEvent::NodeRejoin { node: id, incarnation });
            }
        }
        let cm = CommManager::start_full(
            kernel.clone(),
            endpoint,
            Arc::clone(&tm),
            Arc::clone(&ns),
            detect.clone(),
            fd.clone(),
        );
        {
            // Session receive-path accounting: frames relayed without a
            // payload copy vs. owned-decode fallbacks.
            let metrics = self.metrics(id);
            cm.set_rx_metrics(
                metrics.counter("cm.session.rx.zero_copy"),
                metrics.counter("cm.session.rx.fallback"),
            );
        }
        if let Some(d) = &detect {
            d.start(&kernel);
        }
        if let Some(f) = &fd {
            f.start(&kernel);
        }
        Node {
            id,
            kernel,
            pool,
            rm,
            tm,
            ns,
            cm,
            detect,
            fd,
            trace,
            retry_budget: RetryBudget::new(100),
            cluster: Arc::clone(self),
        }
    }

    /// Detaches a node from the network without orderly shutdown (used
    /// together with [`Node::crash`]).
    pub fn detach(&self, id: NodeId) {
        self.net.detach(id);
    }
}

/// One booted TABS node: the Accent kernel plus the four TABS system
/// components of Figure 3-1.
pub struct Node {
    /// Node identity.
    pub id: NodeId,
    /// The Accent-kernel emulation.
    pub kernel: Kernel,
    /// The buffer pool over this node's recoverable segments.
    pub pool: Arc<BufferPool>,
    /// Recovery Manager.
    pub rm: Arc<RecoveryManager>,
    /// Transaction Manager.
    pub tm: Arc<TransactionManager>,
    /// Name Server.
    pub ns: Arc<NameServer>,
    /// Communication Manager.
    pub cm: Arc<CommManager>,
    detect: Option<Arc<Detector>>,
    fd: Option<Arc<FailureDetector>>,
    trace: Option<Arc<TraceCollector>>,
    /// The node-wide retry token bucket every [`Node::app`] handle (and
    /// through them the shard routers) draws from: one bounded retry
    /// budget per node, not one per call path.
    retry_budget: Arc<RetryBudget>,
    cluster: Arc<Cluster>,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node").field("id", &self.id).finish()
    }
}

impl Node {
    /// Creates (or re-opens after a crash) a named recoverable segment of
    /// `pages` pages, backed by a disk that survives crashes.
    pub fn add_segment(&self, name: &str, pages: u32) -> SegmentId {
        let index = {
            let mut tables = self.cluster.seg_tables.lock();
            let table = tables.entry(self.id).or_default();
            let next = table.len() as u32;
            let entry = table.entry(name.to_string()).or_insert((next, pages));
            assert_eq!(entry.1, pages, "segment {name} re-opened with a different size");
            entry.0
        };
        let id = SegmentId { node: self.id, index };
        let disk_name = format!("{}.{}", self.id, name);
        let disk = match &self.cluster.config.storage_dir {
            None => self.cluster.disks.get_or_create_mem(&disk_name, u64::from(pages)),
            Some(dir) => match self.cluster.disks.get(&disk_name) {
                Some(d) => d,
                None => {
                    std::fs::create_dir_all(dir).expect("storage dir");
                    let path = dir.join(format!("{disk_name}.disk"));
                    let d: std::sync::Arc<dyn tabs_kernel::Disk> = if path.exists() {
                        tabs_kernel::FileDisk::open(&path).expect("open disk")
                    } else {
                        tabs_kernel::FileDisk::create(&path, u64::from(pages)).expect("create disk")
                    };
                    self.cluster.disks.insert(&disk_name, std::sync::Arc::clone(&d));
                    d
                }
            },
        };
        self.pool
            .register_segment(SegmentSpec {
                id,
                name: name.to_string(),
                disk,
                base_sector: 0,
                pages,
            })
            .expect("segment registration");
        id
    }

    /// This node's trace collector, when the cluster traces.
    pub fn trace(&self) -> Option<&Arc<TraceCollector>> {
        self.trace.as_ref()
    }

    /// The cluster this node belongs to — its durable cluster-wide
    /// facilities (disks, segment tables, the shard-map store).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// This node's deadlock detector, when the cluster detects.
    pub fn detector(&self) -> Option<&Arc<Detector>> {
        self.detect.as_ref()
    }

    /// This node's failure detector, when the cluster heartbeats.
    pub fn failure_detector(&self) -> Option<&Arc<FailureDetector>> {
        self.fd.as_ref()
    }

    /// The failure detector's per-node reachability view: every watched
    /// peer and whether it currently looks reachable (empty without a
    /// failure detector).
    pub fn reachability(&self) -> Vec<(NodeId, bool)> {
        self.fd.as_ref().map(|f| f.reachability()).unwrap_or_default()
    }

    /// Dependencies handed to data servers built on the server library.
    pub fn deps(&self) -> ServerDeps {
        let mut deps =
            ServerDeps::new(self.kernel.clone(), Arc::clone(&self.rm), Arc::clone(&self.tm));
        if let Some(t) = &self.trace {
            deps = deps.with_trace(Arc::clone(t));
        }
        if let Some(d) = &self.detect {
            deps = deps.with_detect(Arc::clone(d));
        }
        if self.cluster.config.admission_limit.is_some() || self.cluster.config.deadlines.is_some()
        {
            let metrics = self.cluster.metrics(self.id);
            deps = deps.with_admission_metrics(
                metrics.counter("admission.shed"),
                metrics.counter("deadline.expired"),
            );
        }
        deps
    }

    /// A [`ServerConfig`] for a data server on this node, honouring the
    /// cluster's configured lock time-out, lock-table striping, and
    /// admission limit.
    pub fn server_config(&self, name: &str, segment: SegmentId) -> ServerConfig {
        let mut config = ServerConfig::new(name, segment)
            .with_lock_timeout(self.cluster.config.lock_timeout)
            .with_lock_stripes(self.cluster.config.lock_stripes);
        if let Some(limit) = self.cluster.config.admission_limit {
            config = config.with_admission_limit(limit);
        }
        config
    }

    /// An application handle (Table 3-2 interface), wired to the node's
    /// shared retry budget and — when the cluster configures deadlines —
    /// the end-to-end deadline policy.
    pub fn app(&self) -> AppHandle {
        let mut app = AppHandle::new(self.kernel.clone(), Arc::clone(&self.tm))
            .with_retry_budget(Arc::clone(&self.retry_budget));
        if let Some(policy) = self.cluster.config.deadlines {
            app = app.with_deadlines(policy);
        }
        if self.cluster.config.admission_limit.is_some() || self.cluster.config.deadlines.is_some()
        {
            app = app.with_retry_metrics(
                self.cluster.metrics(self.id).counter("retry.budget_exhausted"),
            );
        }
        app
    }

    /// Runs crash recovery: must be called after all data servers have
    /// registered their segments and recovery handlers, before requests
    /// are accepted (the §3.1.1 startup order).
    pub fn recover(&self) -> Result<RecoveryReport, tabs_rm::RmError> {
        let report = self.rm.recover()?;
        self.tm.load_recovery(&report.committed, &report.aborted, &report.in_doubt);
        Ok(report)
    }

    /// Registers a data server's object with the Name Server.
    pub fn register_server(
        &self,
        server: &DataServer,
        name: &str,
        type_name: &str,
        object: ObjectId,
    ) {
        self.ns.register(name, type_name, server.port_id(), object);
    }

    /// Resolves a name to `(send-right, object)` pairs, transparently
    /// proxying remote ports through the Communication Manager.
    pub fn resolve(
        &self,
        name: &str,
        desired: usize,
        max_wait: Duration,
    ) -> Vec<(tabs_kernel::SendRight, ObjectId)> {
        self.ns
            .lookup(name, desired, max_wait)
            .into_iter()
            .filter_map(|e| self.cm.resolve_port(e.port).map(|sr| (sr, e.object)))
            .collect()
    }

    /// Takes a checkpoint: the Transaction Manager supplies live
    /// transaction states, the Recovery Manager writes the record
    /// (§3.2.2).
    pub fn checkpoint(&self) -> Result<(), tabs_rm::RmError> {
        self.rm.checkpoint(self.tm.active_states())?;
        Ok(())
    }

    /// Simulates a node crash: the node vanishes from the network, every
    /// process wakes and exits, and all volatile state (buffer pool
    /// frames, un-forced log records, lock tables, transaction registry)
    /// is lost. Non-volatile storage survives in the cluster.
    pub fn crash(self) {
        self.cluster.net.detach(self.id);
        self.kernel.shutdown();
        self.kernel.join_all();
        self.pool.invalidate_volatile();
        // Local registrations die with the node; permanent names come back
        // when servers re-register after reboot.
        self.ns.clear_local();
    }

    /// Orderly shutdown (flush + crash); used at the end of examples.
    pub fn shutdown(self) {
        let _ = self.pool.flush_all();
        let _ = self.rm.force(None);
        self.crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_lock::StdMode;
    use tabs_proto::ServerError;

    /// Builds the simplest possible cell server on `node`.
    fn cell_server(node: &Node, name: &str) -> DataServer {
        let seg = node.add_segment(&format!("{name}-seg"), 16);
        let ds = DataServer::new(&node.deps(), ServerConfig::new(name, seg)).unwrap();
        ds.accept_requests(Arc::new(|ctx, opcode, args| {
            let idx = u64::from_le_bytes(args[..8].try_into().unwrap());
            let obj = ctx.create_object_id(idx * 8, 8);
            match opcode {
                1 => {
                    ctx.lock_object(obj, StdMode::Shared)?;
                    ctx.read_object(obj)
                }
                2 => {
                    ctx.lock_object(obj, StdMode::Exclusive)?;
                    ctx.pin_and_buffer(obj)?;
                    ctx.write_raw(obj, &args[8..16])?;
                    ctx.log_and_unpin(obj)?;
                    Ok(vec![])
                }
                _ => Err(ServerError::BadRequest("opcode".into())),
            }
        }));
        node.register_server(&ds, name, "cells", ObjectId::new(seg, 0, 8));
        ds
    }

    fn get(app: &AppHandle, s: &tabs_kernel::SendRight, tid: Tid, idx: u64) -> u64 {
        let out = app.call(s, tid, 1, idx.to_le_bytes().to_vec()).unwrap();
        u64::from_le_bytes(out[..8].try_into().unwrap())
    }

    fn set(app: &AppHandle, s: &tabs_kernel::SendRight, tid: Tid, idx: u64, v: u64) {
        let mut args = idx.to_le_bytes().to_vec();
        args.extend_from_slice(&v.to_le_bytes());
        app.call(s, tid, 2, args).unwrap();
    }

    #[test]
    fn single_node_lifecycle() {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let ds = cell_server(&node, "cells");
        node.recover().unwrap();
        let app = node.app();
        let s = ds.send_right();
        let tid = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &s, tid, 0, 41);
        assert_eq!(get(&app, &s, tid, 0), 41);
        assert!(app.end_transaction(tid).unwrap().is_committed());
        node.shutdown();
    }

    #[test]
    fn crash_and_recover_node() {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let ds = cell_server(&node, "cells");
        node.recover().unwrap();
        let app = node.app();
        let s = ds.send_right();

        // Commit 7 → survives; write 9 uncommitted → rolled back.
        let t1 = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &s, t1, 0, 7);
        assert!(app.end_transaction(t1).unwrap().is_committed());
        let t2 = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &s, t2, 1, 9);
        node.rm.force(None).unwrap();

        node.crash();

        // Reboot: same segment table, recovery restores invariants.
        let node = cluster.boot_node(NodeId(1));
        let ds = cell_server(&node, "cells");
        let report = node.recover().unwrap();
        assert!(report.committed.contains(&t1));
        assert!(report.aborted.contains(&t2));
        let app = node.app();
        let s = ds.send_right();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        assert_eq!(get(&app, &s, t, 0), 7);
        assert_eq!(get(&app, &s, t, 1), 0);
        app.end_transaction(t).unwrap();
        node.shutdown();
    }

    #[test]
    fn two_node_distributed_write_transaction() {
        let cluster = Cluster::new();
        let n1 = cluster.boot_node(NodeId(1));
        let n2 = cluster.boot_node(NodeId(2));
        let ds1 = cell_server(&n1, "cells-a");
        let _ds2 = cell_server(&n2, "cells-b");
        n1.recover().unwrap();
        n2.recover().unwrap();

        // Node 1's application finds node 2's server by broadcast lookup.
        let remote = n1.resolve("cells-b", 1, Duration::from_secs(2));
        assert_eq!(remote.len(), 1);
        let (remote_s, _oid) = &remote[0];

        let app = n1.app();
        let tid = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &ds1.send_right(), tid, 0, 100);
        set(&app, remote_s, tid, 0, 200);
        assert!(app.end_transaction(tid).unwrap().is_committed());

        // Both nodes see committed values in fresh transactions.
        let t2 = app.begin_transaction(Tid::NULL).unwrap();
        assert_eq!(get(&app, &ds1.send_right(), t2, 0), 100);
        assert_eq!(get(&app, remote_s, t2, 0), 200);
        app.end_transaction(t2).unwrap();

        // Node 2's log holds prepare + commit records (it was a 2PC
        // participant).
        let recs = n2.rm.log().durable_entries();
        assert!(recs.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Prepare { .. })));
        assert!(recs.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));

        n1.shutdown();
        n2.shutdown();
    }

    #[test]
    fn distributed_abort_rolls_back_remote_work() {
        let cluster = Cluster::new();
        let n1 = cluster.boot_node(NodeId(1));
        let n2 = cluster.boot_node(NodeId(2));
        let ds1 = cell_server(&n1, "a");
        let ds2 = cell_server(&n2, "b");
        n1.recover().unwrap();
        n2.recover().unwrap();
        let remote = n1.resolve("b", 1, Duration::from_secs(2));
        let (remote_s, _) = &remote[0];

        let app = n1.app();
        let tid = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &ds1.send_right(), tid, 0, 1);
        set(&app, remote_s, tid, 0, 2);
        app.abort_transaction(tid).unwrap();

        // Remote value rolled back (checked in a fresh transaction once
        // the abort propagates and releases locks).
        let app2 = n2.app();
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        loop {
            let t = app2.begin_transaction(Tid::NULL).unwrap();
            let out = app2.call(&ds2.send_right(), t, 1, 0u64.to_le_bytes().to_vec());
            let done = match out {
                Ok(bytes) => {
                    let v = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                    assert_eq!(v, 0);
                    true
                }
                Err(_) => false, // still locked; abort in flight
            };
            let _ = app2.end_transaction(t);
            if done {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "abort never landed");
            std::thread::sleep(Duration::from_millis(20));
        }
        n1.shutdown();
        n2.shutdown();
    }

    #[test]
    fn participant_crash_before_decision_recovers_in_doubt_and_resolves() {
        let cluster = Cluster::new();
        let n1 = cluster.boot_node(NodeId(1));
        let n2 = cluster.boot_node(NodeId(2));
        let _ds1 = cell_server(&n1, "a");
        let ds2 = cell_server(&n2, "b");
        n1.recover().unwrap();
        n2.recover().unwrap();
        let remote = n1.resolve("b", 1, Duration::from_secs(2));
        let (remote_s, _) = &remote[0];

        let app = n1.app();
        let tid = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, remote_s, tid, 0, 55);
        // Simulate: node 2 prepared (force prepare record directly), then
        // crashed before any decision arrived.
        n2.rm.log_begin(tid, Tid::NULL);
        n2.rm.log_prepare(tid, NodeId(1)).unwrap();
        drop(ds2);
        n2.crash();

        // Meanwhile the coordinator resolves the transaction (node 2 is
        // unreachable, so commit can't get acks — commit on node 1 only).
        // For the test we record the outcome as committed on node 1.
        // (A full end_transaction would block chasing acks.)
        n1.rm.log_begin(tid, Tid::NULL);
        n1.rm.log_commit(tid).unwrap();
        n1.tm.load_recovery(&[tid], &[], &[]);

        // Reboot node 2: recovery finds the in-doubt transaction, asks
        // node 1, and commits it.
        let n2 = cluster.boot_node(NodeId(2));
        let _ds2 = cell_server(&n2, "b");
        let report = n2.recover().unwrap();
        assert_eq!(report.in_doubt.len(), 1);
        assert_eq!(report.in_doubt[0].0, tid);
        // Wait for the inquiry to resolve.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while n2.tm.phase(tid) != Some(tabs_tm::TxPhase::Committed) {
            assert!(std::time::Instant::now() < deadline, "in-doubt never resolved");
            std::thread::sleep(Duration::from_millis(20));
        }
        n1.shutdown();
        n2.shutdown();
    }

    #[test]
    fn failure_detector_suspects_crash_and_clears_on_rejoin() {
        let hb = HeartbeatConfig {
            interval: Duration::from_millis(5),
            suspect_after: 3,
            probe_cap: Duration::from_millis(40),
        };
        let cluster = Cluster::with_config(ClusterConfig::default().heartbeat(hb).trace(true));
        let n1 = cluster.boot_node(NodeId(1));
        let n2 = cluster.boot_node(NodeId(2));
        let wait_for = |pred: &dyn Fn() -> bool, what: &str| {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while !pred() {
                assert!(std::time::Instant::now() < deadline, "timed out: {what}");
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        // Heartbeats flow: node 1 sees node 2 as reachable.
        wait_for(&|| n1.reachability().contains(&(NodeId(2), true)), "peer seen");
        n2.crash();
        wait_for(
            &|| n1.failure_detector().unwrap().is_suspected(NodeId(2)),
            "crashed peer suspected",
        );
        assert!(!n1.cm.is_reachable(NodeId(2)));
        // Reboot on the same durable state: heartbeats resume, suspicion
        // clears without any help from node 1.
        let n2 = cluster.boot_node(NodeId(2));
        wait_for(
            &|| !n1.failure_detector().unwrap().is_suspected(NodeId(2)),
            "rebooted peer reachable again",
        );
        // The rejoin (incarnation 2) is visible in the timeline.
        assert!(cluster.timeline().records().iter().any(|r| matches!(
            r.event,
            TraceEvent::NodeRejoin { node: NodeId(2), incarnation: 2 }
        )));
        n1.shutdown();
        n2.shutdown();
    }

    #[test]
    fn checkpoint_smoke() {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let ds = cell_server(&node, "cells");
        node.recover().unwrap();
        let app = node.app();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &ds.send_right(), t, 0, 5);
        node.checkpoint().unwrap();
        assert!(app.end_transaction(t).unwrap().is_committed());
        // The checkpoint recorded the in-flight transaction.
        let has_ckpt = node
            .rm
            .log()
            .durable_entries()
            .iter()
            .any(|e| matches!(&e.record, tabs_wal::LogRecord::Checkpoint { active, .. } if active.iter().any(|(x, _)| *x == t)));
        assert!(has_ckpt);
        node.shutdown();
    }

    #[test]
    fn file_backed_cluster_survives_crash() {
        let dir = std::env::temp_dir().join(format!("tabs-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cluster = Cluster::with_config(ClusterConfig::default().storage_dir(dir.clone()));
        let node = cluster.boot_node(NodeId(1));
        let ds = cell_server(&node, "cells");
        node.recover().unwrap();
        let app = node.app();
        let s = ds.send_right();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &s, t, 0, 321);
        assert!(app.end_transaction(t).unwrap().is_committed());
        node.crash();

        // Reboot against the same on-disk files.
        let node = cluster.boot_node(NodeId(1));
        let ds = cell_server(&node, "cells");
        node.recover().unwrap();
        let app = node.app();
        let s = ds.send_right();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        assert_eq!(get(&app, &s, t, 0), 321);
        app.end_transaction(t).unwrap();
        node.shutdown();
        // The log and segment files really exist on disk.
        assert!(dir.join("n1.log").exists());
        assert!(dir.join("n1.cells-seg.disk").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_perf_aggation_spans_nodes() {
        let cluster = Cluster::new();
        let n1 = cluster.boot_node(NodeId(1));
        let n2 = cluster.boot_node(NodeId(2));
        let ds1 = cell_server(&n1, "x");
        n1.recover().unwrap();
        n2.recover().unwrap();
        let app = n1.app();
        let before = cluster.perf_all();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        set(&app, &ds1.send_right(), t, 0, 1);
        app.end_transaction(t).unwrap();
        let delta = cluster.perf_all().since(&before);
        assert!(delta.get(tabs_kernel::PrimitiveOp::DataServerCall) >= 1);
        assert!(delta.get(tabs_kernel::PrimitiveOp::StableStorageWrite) >= 1);
        n1.shutdown();
        n2.shutdown();
    }
}
