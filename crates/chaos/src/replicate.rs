//! Minority-kill replication sweep: arms every `rep.*` crash point (and
//! every `tm.*` two-phase-commit point) with a replica-set member as the
//! victim, over a replicated bank shard with transfers in flight, and
//! checks that the majority never stops committing.
//!
//! The scenario is a three-node cluster whose single bank shard is
//! replicated on all three nodes (leader 1, followers 2 and 3). Node 3
//! also hosts the client router, so the victim is always a *minority* of
//! the replica set: the leader or follower 2. The armed
//! [`CrashController`] makes the victim dead to the world the instant
//! any hooked layer reaches the armed point — the client's write
//! fan-out, a resync probe, the victim's own Recovery/Transaction
//! Manager, or the coordinator's commit protocol. The oracle then
//! demands exactly what the replication layer promises:
//!
//! 1. **Non-blocking commit** — once the survivors suspect the victim, a
//!    fresh transfer must commit (the replica set's missing vote is
//!    waived by the majority, never waited out).
//! 2. **Convergent rejoin** — the victim reboots on its surviving disks,
//!    is resynced from a survivor, and every member's full shard
//!    snapshot must be byte-identical; no member is left in doubt.
//! 3. **The standard oracle** — after a full-cluster crash and reboot:
//!    conservation, durability of reported-committed transfers, drained
//!    lock tables, replica equality again, and idempotent re-recovery.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tabs_codec::Decode;
use tabs_core::{Cluster, Node, NodeId, Tid};
use tabs_kernel::CrashHooks;
use tabs_shard::{
    resolve_owner_port, shard_name, Partitioning, Replicator, ResyncOptions, ShardClient, ShardMap,
    ShardServer, OP_SNAP,
};

use crate::controller::{CrashController, KillLog, NodeFaults};
use crate::migrate::{boot_sharded, poll_key, poll_shard_locks_drained, shard_transfer};
use crate::runner::{
    check_model, install_fault_disk, install_fault_log, Outcome, Xfer, BASE, CHAOS_TIMEOUTS,
    PARTITION_HEARTBEAT, TWO_PC_POINTS,
};

/// The crash points the replication sweep owns in the registry: the
/// client write fan-out pair and the resync sequence. The sweep *also*
/// re-arms every [`TWO_PC_POINTS`] entry with a replica as the victim,
/// but those stay owned by the distributed sweep's list — each registry
/// point appears in exactly one sweep list.
pub const REPLICATION_POINTS: &[&str] = tabs_shard::REP_CRASH_POINTS;

/// The replicated service under test.
const SERVICE: &str = "bank";
/// Slots in the single shard: global keys 0..4.
const SLOTS: u64 = 4;
/// The accounts the workload moves money between.
const ACCOUNTS: [u64; 4] = [0, 1, 2, 3];

/// One shard, fully replicated: leader on node 1, followers on 2 and 3.
fn replicated_map() -> ShardMap {
    ShardMap {
        service: SERVICE.into(),
        version: 1,
        partitioning: Partitioning::Hash,
        owners: vec![NodeId(1)],
        replicas: vec![vec![NodeId(2), NodeId(3)]],
    }
}

/// Reads one member's full shard snapshot (inside a throwaway
/// transaction, so its shared locks release immediately).
fn member_snapshot(node: &Node, map: &ShardMap, member: NodeId) -> Result<Vec<i64>, String> {
    let name = shard_name(&map.service, 0);
    let mut last = String::new();
    for _ in 0..3 {
        let port = resolve_owner_port(&node.ns, &node.cm, &name, member, Duration::from_secs(3))
            .ok_or_else(|| format!("no port for {name} on {member}"))?;
        let app = node.app();
        let t = match app.begin_transaction(Tid::NULL) {
            Ok(t) => t,
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        let r = app.call(&port, t, OP_SNAP, Vec::new());
        let _ = app.abort_transaction(t);
        match r {
            Ok(blob) => {
                return Vec::<i64>::decode_all(&blob)
                    .map_err(|e| format!("snapshot of {member} does not decode: {e}"));
            }
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    Err(format!("snapshot of {member} failed: {last}"))
}

/// Arms each point in [`REPLICATION_POINTS`] and [`TWO_PC_POINTS`] with
/// the shard leader and again with a follower as the victim. Returns the
/// set of points that actually killed a node.
pub fn sweep_replication(seed: u64) -> Result<BTreeSet<&'static str>, String> {
    let mut killed = BTreeSet::new();
    let mut points: Vec<&'static str> = REPLICATION_POINTS.to_vec();
    points.extend_from_slice(TWO_PC_POINTS);
    for &point in &points {
        for kill_leader in [false, true] {
            let kills = crate::runner::with_coverage_retries(seed, |s| {
                replication_scenario(s, point, kill_leader)
            })?;
            for (p, _node) in kills {
                killed.insert(p);
            }
        }
    }
    Ok(killed)
}

/// Measured commit latencies over the replicated bank shard, for the
/// `tables replicate` perf workload.
#[derive(Debug, Clone)]
pub struct ReplicationLatency {
    /// Per-transfer end-to-end latency, committed transfers only.
    pub latencies: Vec<Duration>,
    /// Transfers that committed.
    pub committed: u64,
    /// Transfers that aborted or ended unknown.
    pub aborted: u64,
}

/// Boots the three-member replicated bank shard and measures per-transfer
/// commit latency from the router node — healthy, or with follower 2
/// killed first (`kill_replica`). The killed mode waits for the failure
/// detector to suspect the corpse before measuring, so the numbers are
/// the steady state the 3x acceptance gate is about: commits flowing
/// through the surviving majority via the quorum waiver, not the
/// one-time suspicion delay.
pub fn replication_latency(
    seed: u64,
    kill_replica: bool,
    transfers: u32,
) -> Result<ReplicationLatency, String> {
    let label = if kill_replica { "replica-killed" } else { "healthy" };
    let fail = |m: String| format!("seed={seed} replicate/{label}: {m}");

    let cluster = Cluster::with_config(
        tabs_core::ClusterConfig::default()
            .heartbeat(PARTITION_HEARTBEAT)
            .replication(tabs_core::ReplicationPolicy::enabled()),
    );
    let map = replicated_map();
    if !cluster.commit_shard_map(SERVICE, map.version, map.to_blob()) {
        return Err(fail("seeding the durable map store failed".into()));
    }
    let (n1, c1, s1) = boot_sharded(&cluster, 1, &map).map_err(&fail)?;
    let mut m2 = Some(boot_sharded(&cluster, 2, &map).map_err(&fail)?);
    let (n3, c3, s3) = boot_sharded(&cluster, 3, &map).map_err(&fail)?;
    for n in [&n1, &m2.as_ref().unwrap().0, &n3] {
        n.tm.set_timeouts(CHAOS_TIMEOUTS);
    }

    let app = n3.app();
    let client = ShardClient::new(&n3, SERVICE).map_err(|e| fail(format!("router: {e}")))?;
    client.set_call_deadline(Duration::from_millis(1500));
    for &key in &ACCOUNTS {
        app.run(|t| client.set(t, key, BASE)).map_err(|e| fail(format!("seed key {key}: {e}")))?;
    }
    for &(from, to) in &[(0u64, 1u64), (2, 3)] {
        let _ = shard_transfer(&app, &client, from, to, 1); // warm ports
    }

    if kill_replica {
        let (vn, vc, vs) = m2.take().expect("member 2 rig present");
        drop((vc, vs));
        vn.crash();
        cluster.detach(NodeId(2));
        let deadline = Instant::now() + Duration::from_secs(2);
        while !n3.cm.is_suspected(NodeId(2)) {
            if Instant::now() >= deadline {
                return Err(fail("router never suspected the killed replica".into()));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let pairs = [(0u64, 1u64), (2, 3), (1, 2), (3, 0)];
    let mut out = ReplicationLatency {
        latencies: Vec::with_capacity(transfers as usize),
        committed: 0,
        aborted: 0,
    };
    for i in 0..transfers {
        let (from, to) = pairs[i as usize % pairs.len()];
        let start = Instant::now();
        let outcome = shard_transfer(&app, &client, from, to, 1);
        let took = start.elapsed();
        if outcome == Outcome::Committed {
            out.latencies.push(took);
            out.committed += 1;
        } else {
            out.aborted += 1;
        }
    }
    if out.committed == 0 {
        return Err(fail("no transfer committed — nothing to measure".into()));
    }

    drop(client);
    drop((c1, s1, c3, s3));
    n1.crash();
    if let Some((n, c, s)) = m2 {
        drop((c, s));
        n.crash();
    }
    n3.crash();
    Ok(out)
}

/// One minority-kill scenario; see the module docs for the shape.
fn replication_scenario(
    seed: u64,
    point: &'static str,
    kill_leader: bool,
) -> Result<Vec<(&'static str, NodeId)>, String> {
    let victim_id = if kill_leader { NodeId(1) } else { NodeId(2) };
    let label = format!("{point}@{}", if kill_leader { "leader" } else { "follower" });
    let fail = |m: String| format!("seed={seed} crash_point={label} {m}");

    let cluster = Cluster::with_config(
        tabs_core::ClusterConfig::default()
            .heartbeat(PARTITION_HEARTBEAT)
            .replication(tabs_core::ReplicationPolicy::enabled()),
    );
    let f1 = NodeFaults::new(seed ^ 0xC1);
    let f2 = NodeFaults::new(seed ^ 0xC2);
    install_fault_log(&cluster, 1, &f1);
    install_fault_log(&cluster, 2, &f2);
    let map = replicated_map();
    install_fault_disk(&cluster, 1, &shard_name(SERVICE, 0), &f1);
    install_fault_disk(&cluster, 2, &shard_name(SERVICE, 0), &f2);
    if !cluster.commit_shard_map(SERVICE, map.version, map.to_blob()) {
        return Err(fail("seeding the durable map store failed".into()));
    }

    // Every member hosts the shard; the victim's rig lives in an Option
    // so its reboot can swap the handles in place.
    let mut m1 = Some(boot_sharded(&cluster, 1, &map).map_err(&fail)?);
    let mut m2 = Some(boot_sharded(&cluster, 2, &map).map_err(&fail)?);
    let (n3, c3, s3) = boot_sharded(&cluster, 3, &map).map_err(&fail)?;
    for n in [&m1.as_ref().unwrap().0, &m2.as_ref().unwrap().0, &n3] {
        n.tm.set_timeouts(CHAOS_TIMEOUTS);
    }

    let app = n3.app();
    let client =
        Arc::new(ShardClient::new(&n3, SERVICE).map_err(|e| fail(format!("router: {e}")))?);
    client.set_call_deadline(Duration::from_millis(1500));
    for &key in &ACCOUNTS {
        app.run(|t| client.set(t, key, BASE)).map_err(|e| fail(format!("seed key {key}: {e}")))?;
    }

    // Arm the victim on every replication surface: the armed point kills
    // it wherever the point fires — the victim's own RM/WAL/TM, the
    // coordinator's TM (its 2PC steps for the replica group), the
    // client's write fan-out, or the resync probe.
    let kills: KillLog = Arc::new(Mutex::new(Vec::new()));
    let peers: Vec<NodeId> =
        [NodeId(1), NodeId(2), NodeId(3)].into_iter().filter(|&p| p != victim_id).collect();
    let victim_faults = if kill_leader { f1.clone() } else { f2.clone() };
    let ctl = CrashController::new(
        &cluster,
        victim_id,
        peers,
        Some(point),
        victim_faults,
        Arc::clone(&kills),
    );
    {
        let victim_node =
            if kill_leader { &m1.as_ref().unwrap().0 } else { &m2.as_ref().unwrap().0 };
        ctl.install(victim_node);
    }
    ctl.install(&n3);
    client.set_crash_hooks(Arc::clone(&ctl) as Arc<dyn CrashHooks>);
    let probe = Replicator::new();
    probe.set_crash_hooks(Arc::clone(&ctl) as Arc<dyn CrashHooks>);

    // Transfers keep flowing through the replicated shard while a resync
    // probe (a healthy-cluster leader-to-follower copy, normally an
    // idempotent no-op) crosses the `rep.resync.*` points concurrently.
    let wl_client = Arc::clone(&client);
    let wl_app = app.clone();
    let workload = std::thread::spawn(move || {
        let mut xfers = Vec::new();
        for &(from, to) in &[(0u64, 2u64), (1u64, 3u64), (0u64, 1u64), (3u64, 2u64)] {
            let outcome = shard_transfer(&wl_app, &wl_client, from, to, 10);
            xfers.push(Xfer { from: from as usize, to: to as usize, amount: 10, outcome });
            std::thread::sleep(Duration::from_millis(5));
        }
        xfers
    });
    std::thread::sleep(Duration::from_millis(8));
    let probe_opts = ResyncOptions { resolve_wait: Duration::from_secs(1), copy_attempts: 3 };
    let _ = probe.resync(&n3, &map, 0, NodeId(1), NodeId(2), &probe_opts);
    probe.clear_crash_hooks();

    let mut xfers = workload.join().map_err(|_| fail("workload thread panicked".into()))?;
    client.clear_crash_hooks();
    if !ctl.was_killed() {
        return Err(fail("armed point never fired — the sweep does not cover it".into()));
    }

    // Non-blocking commit: once the survivors suspect the victim, a
    // fresh transfer must commit through the two-member majority.
    let suspect_deadline = Instant::now() + Duration::from_secs(2);
    while !n3.cm.is_suspected(victim_id) {
        if Instant::now() >= suspect_deadline {
            return Err(fail("survivors never suspected the dead replica".into()));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let confirm_deadline = Instant::now() + Duration::from_secs(6);
    let mut confirmed = false;
    for _ in 0..10 {
        let outcome = shard_transfer(&app, &client, 2, 3, 5);
        xfers.push(Xfer { from: 2, to: 3, amount: 5, outcome });
        if outcome == Outcome::Committed {
            confirmed = true;
            break;
        }
        if Instant::now() >= confirm_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if !confirmed {
        return Err(fail(
            "commits did not continue with a dead minority (non-blocking commit violated)".into(),
        ));
    }

    // "Replace the machine, keep the disks": reboot the victim on its
    // surviving non-volatile state and repair it from a survivor.
    {
        let slot = if kill_leader { &mut m1 } else { &mut m2 };
        let (vn, vc, vs) = slot.take().expect("victim rig present");
        drop((vc, vs));
        vn.crash();
        let nv = ctl.revive();
        let (cv, sv) = ShardServer::spawn_all(&nv, &map, SLOTS)
            .map_err(|e| fail(format!("re-spawn victim shards: {e}")))?;
        nv.tm.set_timeouts(CHAOS_TIMEOUTS);
        nv.recover().map_err(|e| fail(format!("recover rebooted victim: {e}")))?;
        *slot = Some((nv, cv, sv));
    }
    let repair = Replicator::new();
    repair
        .resync(&n3, &map, 0, NodeId(3), victim_id, &ResyncOptions::default())
        .map_err(|e| fail(format!("repair resync after rejoin: {e}")))?;

    // No member may be left in doubt or holding locks, and every
    // member's shard snapshot must be identical — the rejoined minority
    // converged.
    let in_doubt_deadline = Instant::now() + Duration::from_secs(8);
    {
        let r1 = m1.as_ref().expect("member 1 rig present");
        let r2 = m2.as_ref().expect("member 2 rig present");
        for (who, node, servers) in [("n1", &r1.0, &r1.2), ("n2", &r2.0, &r2.2), ("n3", &n3, &s3)] {
            loop {
                let tids = node.tm.in_doubt_tids();
                if tids.is_empty() {
                    break;
                }
                if Instant::now() >= in_doubt_deadline {
                    return Err(fail(format!("{who} left unresolved Tids: {tids:?}")));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            if let Err(e) = poll_shard_locks_drained(servers, who, in_doubt_deadline) {
                // Name the holders: "leaked 1 lock" alone is undebuggable.
                let mut detail = String::new();
                for s in servers {
                    let seg = s.server().segment().id();
                    for slot in 0..SLOTS {
                        let obj = tabs_kernel::ObjectId::new(seg, slot * 8, 8);
                        let h = s.server().locks().holders(obj);
                        if !h.is_empty() {
                            detail.push_str(&format!(" shard{} slot{slot}: {h:?}", s.shard()));
                        }
                    }
                }
                return Err(fail(format!("{e} —{detail}")));
            }
        }
    }
    let mut snaps = Vec::new();
    for &member in &[NodeId(1), NodeId(2), NodeId(3)] {
        snaps.push(member_snapshot(&n3, &map, member).map_err(&fail)?);
    }
    if snaps[1] != snaps[0] || snaps[2] != snaps[0] {
        return Err(fail(format!("replicas diverged after rejoin: {snaps:?}")));
    }

    // Full-cluster crash, reboot on the surviving disks, standard oracle.
    std::thread::sleep(Duration::from_millis(150));
    let killed: Vec<(&'static str, NodeId)> = kills.lock().clone();
    drop(client);
    drop((c3, s3));
    for (n, c, s) in [m1, m2].into_iter().flatten() {
        drop((c, s));
        n.crash();
    }
    n3.crash();
    for (a, b) in [(1u16, 2u16), (1, 3), (2, 3)] {
        cluster.network().heal(NodeId(a), NodeId(b));
    }
    f1.clear();
    f2.clear();

    let first = recovered_replica_state(seed, &cluster, &label, &xfers)?;
    let second = recovered_replica_state(seed, &cluster, &label, &xfers)?;
    if first != second {
        return Err(fail(format!(
            "re-recovery not idempotent: first {first:?}, second {second:?}"
        )));
    }
    Ok(killed)
}

/// Reboots all three members, recovers, runs the oracle over the
/// balances read through a fresh router, checks the replicas are still
/// identical, and crashes everything again.
fn recovered_replica_state(
    seed: u64,
    cluster: &Arc<Cluster>,
    label: &str,
    xfers: &[Xfer],
) -> Result<Vec<i64>, String> {
    let fail = |m: String| format!("seed={seed} crash_point={label} {m}");
    let (version, blob) =
        cluster.shard_map(SERVICE).ok_or_else(|| fail("durable map store is empty".into()))?;
    let map = ShardMap::from_blob(&blob)
        .map_err(|e| fail(format!("durable map v{version} does not decode: {e}")))?;

    // The transfer coordinator (node 3) comes back first: rebooted
    // members resolve their in-doubt transactions by inquiring at it.
    let (n3, c3, s3) = boot_sharded(cluster, 3, &map).map_err(&fail)?;
    let (n1, c1, s1) = boot_sharded(cluster, 1, &map).map_err(&fail)?;
    let (n2, c2, s2) = boot_sharded(cluster, 2, &map).map_err(&fail)?;

    let deadline = Instant::now() + Duration::from_secs(8);
    poll_shard_locks_drained(&s1, "rebooted leader", deadline).map_err(&fail)?;
    poll_shard_locks_drained(&s2, "rebooted follower 2", deadline).map_err(&fail)?;
    poll_shard_locks_drained(&s3, "rebooted follower 3", deadline).map_err(&fail)?;

    let app = n3.app();
    let client = ShardClient::new(&n3, SERVICE).map_err(|e| fail(format!("re-router: {e}")))?;
    let mut balances = Vec::with_capacity(ACCOUNTS.len());
    for &key in &ACCOUNTS {
        balances.push(poll_key(&app, &client, key, deadline).map_err(&fail)?);
    }
    let base = vec![BASE; ACCOUNTS.len()];
    check_model(&balances, &base, xfers).map_err(&fail)?;
    let mut snaps = Vec::new();
    for &member in &[NodeId(1), NodeId(2), NodeId(3)] {
        snaps.push(member_snapshot(&n3, &map, member).map_err(&fail)?);
    }
    if snaps[1] != snaps[0] || snaps[2] != snaps[0] {
        return Err(fail(format!("replicas diverged after recovery: {snaps:?}")));
    }

    drop(client);
    drop((s1, s2, s3));
    drop((c1, c2, c3));
    n1.crash();
    n2.crash();
    n3.crash();
    Ok(balances)
}
