//! The Figure 4-1 bank: a trivial banking application over the I/O server
//! and the integer array server.
//!
//! The paper's snapshot shows three display areas: a committed deposit
//! (black), a withdrawal cut short by a node failure (struck through after
//! the screen is restored), and an interaction still in progress (gray).
//! This example reproduces all three, printing the rendered screen.
//!
//! ```text
//! cargo run -p tabs-servers --example bank
//! ```

use tabs_core::{Cluster, NodeId, Tid};
use tabs_servers::{IntArrayClient, IntArrayServer, IoClient, IoServer};

const CHECKING: u64 = 0;

fn main() {
    let cluster = Cluster::new();
    let node = cluster.boot_node(NodeId(1));
    let accounts = IntArrayServer::spawn(&node, "accounts", 16).expect("accounts");
    let io = IoServer::spawn(&node, "display").expect("io server");
    node.recover().expect("recovery");
    let app = node.app();
    let bank = IntArrayClient::new(app.clone(), accounts.send_right());
    let screen = IoClient::new(app.clone(), io.send_right());

    // Open the account with $100.
    app.run(|t| bank.set(t, CHECKING, 100)).expect("open account");

    // Area one: "the user successfully deposited 35 dollars to a checking
    // account. The user knew that the action had occurred (committed),
    // because its output was displayed in black."
    screen.inject(0, "deposit 35").expect("type");
    let t = app.begin_transaction(Tid::NULL).expect("begin");
    let area1 = screen.obtain_area(t).expect("area");
    let cmd = screen.read_line(t, area1).expect("read");
    assert_eq!(cmd, "deposit 35");
    let balance = bank.get(t, CHECKING).expect("read balance");
    bank.set(t, CHECKING, balance + 35).expect("deposit");
    screen.writeln(t, area1, &format!("deposit 35 -> balance {}", balance + 35)).expect("echo");
    assert!(app.end_transaction(t).expect("commit").is_committed());

    // Area two: "the user attempted to withdraw 80 dollars from a checking
    // account, but the node failed during the transaction, causing it to
    // abort."
    screen.inject(1, "withdraw 80").expect("type");
    let t = app.begin_transaction(Tid::NULL).expect("begin");
    let area2 = screen.obtain_area(t).expect("area");
    let cmd = screen.read_line(t, area2).expect("read");
    assert_eq!(cmd, "withdraw 80");
    let balance = bank.get(t, CHECKING).expect("read balance");
    bank.set(t, CHECKING, balance - 80).expect("withdraw");
    screen.writeln(t, area2, "withdraw 80 ...").expect("echo");
    // The node fails before the transaction commits.
    node.rm.force(None).expect("force");
    drop((accounts, io));
    println!("*** node failure during the withdrawal ***\n");
    node.crash();

    // "The IO server restored the screen when the system became available,
    // and the user is currently trying again in area three, where the
    // transaction is still in progress."
    let node = cluster.boot_node(NodeId(1));
    let accounts = IntArrayServer::spawn(&node, "accounts", 16).expect("accounts");
    let io = IoServer::spawn(&node, "display").expect("io server");
    node.recover().expect("recovery");
    let app = node.app();
    let bank = IntArrayClient::new(app.clone(), accounts.send_right());
    let screen = IoClient::new(app.clone(), io.send_right());

    screen.inject(2, "withdraw 80").expect("type");
    let t3 = app.begin_transaction(Tid::NULL).expect("begin");
    let area3 = screen.obtain_area(t3).expect("area");
    let cmd = screen.read_line(t3, area3).expect("read");
    let balance = bank.get(t3, CHECKING).expect("balance");
    bank.set(t3, CHECKING, balance - 80).expect("withdraw");
    screen.writeln(t3, area3, &format!("{cmd} -> balance {}", balance - 80)).expect("echo");
    // … t3 deliberately left in progress for the snapshot.

    println!("Figure 4-1, reproduced (plain = committed/black, ░ = in");
    println!("progress/gray, ~…~ = aborted/struck through, […] = input read):\n");
    println!("{}", screen.render().expect("render"));

    // The money is consistent: the failed withdrawal never happened.
    assert_eq!(balance, 135, "100 + 35 committed; the crashed withdraw-80 undone");

    // Finish area three for a clean exit.
    assert!(app.end_transaction(t3).expect("commit").is_committed());
    println!("final committed balance: {}", balance - 80);
    node.shutdown();
}
