//! The bench CLI: every workload and every regenerated §5 table behind
//! one declarative subcommand table.
//!
//! ```text
//! tables [<command>] [--quick] [--seed N] [--iters N] [--warmup N] [--json PATH]
//! ```
//!
//! Run `tables --help` for the command list. Without a command the full
//! §5 report is regenerated (the `paper` workload). Workload commands
//! (`load`, `contention`, `groupcommit`, `fastpath`, `partition`,
//! `replicate`, `scale`, `overload`, `paper`) and the measured-table
//! commands all honor
//! `--json PATH`: report rows are upsert-merged into the `BENCH_*.json`
//! document keyed on workload/scenario/mode/config, so re-running a
//! workload refreshes its rows instead of duplicating them;
//! `checkbench PATH` validates such a file (schema, duplicate rows and
//! liveness, no perf assertions).
//!
//! Workloads with acceptance gates exit 1 when a gate fails:
//! `load` (lock striping ≥ 1.5× committed throughput at 32 contended
//! clients, full-length runs only), `groupcommit` (forces/commit < 0.5
//! and ≥ 4× reduction), `partition` (cooperative p50 under 25% of the
//! retransmit-timeout baseline), `replicate` (replica-killed p50 commit
//! latency within 3× the healthy baseline), `scale` (≥ 2× aggregate
//! committed throughput at four nodes versus one), `overload` (the
//! metastability oracle: 3×-spike goodput ≥ 70% of saturation, admitted
//! work's p99 within the end-to-end budget, post-spike re-convergence).
//! Usage errors exit 2.

use std::time::Duration;

use tabs_perf::{bench, registry, tables, BenchFile, RunOpts, WorkloadOutput};

/// Shared command-line flags.
struct Flags {
    quick: bool,
    seed: u64,
    iters: Option<u32>,
    warmup: Option<u32>,
    json: Option<String>,
    /// Positional argument after the command (checkbench's PATH).
    arg: Option<String>,
}

impl Flags {
    fn run_opts(&self) -> RunOpts {
        RunOpts { quick: self.quick, seed: self.seed, iters: self.iters, warmup: self.warmup }
    }
}

/// One subcommand: a name, a `--help` line, and a handler returning the
/// process exit code.
struct Command {
    name: &'static str,
    about: &'static str,
    run: fn(&Flags) -> i32,
}

/// The whole CLI, in `--help` order.
const COMMANDS: &[Command] = &[
    Command {
        name: "all",
        about: "full section 5 report: every regenerated table (the default)",
        run: |f| workload("paper", f),
    },
    Command {
        name: "load",
        about: "sustained load: bank/mixed scenarios, lock-striping comparison",
        run: |f| workload("load", f),
    },
    Command {
        name: "contention",
        about: "deadlock-resolution latency: time-out-only vs detection",
        run: |f| workload("contention", f),
    },
    Command {
        name: "groupcommit",
        about: "commit-path log forces: batched vs one-force-per-commit",
        run: |f| workload("groupcommit", f),
    },
    Command {
        name: "fastpath",
        about: "commit fast paths: 1PC + read-only voter drop-out vs full 2PC",
        run: |f| workload("fastpath", f),
    },
    Command {
        name: "partition",
        about: "in-doubt resolution after a coordinator crash",
        run: |f| workload("partition", f),
    },
    Command {
        name: "replicate",
        about: "replicated-shard commit latency: full replica set vs one follower killed",
        run: |f| workload("replicate", f),
    },
    Command {
        name: "scale",
        about: "scale-out: the sharded bank on 1, 2, 4 and 8 nodes",
        run: |f| workload("scale", f),
    },
    Command {
        name: "overload",
        about: "3x-capacity spike vs admission control + deadlines (metastability oracle)",
        run: |f| workload("overload", f),
    },
    Command {
        name: "paper",
        about: "the fourteen Table 5-4 benchmarks, measured",
        run: |f| workload("paper", f),
    },
    Command { name: "table5_1", about: "measured primitive times (static)", run: table5_1 },
    Command { name: "table5_2", about: "pre-commit primitive counts, measured", run: table5_2 },
    Command { name: "table5_3", about: "commit primitive counts, measured", run: table5_3 },
    Command { name: "table5_4", about: "benchmark latencies vs the paper", run: table5_4 },
    Command { name: "table5_5", about: "achievable primitive times (static)", run: table5_5 },
    Command { name: "shapes", about: "benchmark shape report, measured", run: shapes },
    Command { name: "accounting", about: "latency accounting, measured", run: accounting },
    Command {
        name: "trace",
        about: "swimlane demos: 2PC, deadlock, partition, shard migration",
        run: trace,
    },
    Command { name: "chaos", about: "crash-point sweeps against the invariant oracle", run: chaos },
    Command {
        name: "checkbench",
        about: "validate a BENCH_*.json file: schema, duplicate rows, liveness (usage: checkbench PATH)",
        run: checkbench,
    },
];

fn usage(mut to: impl std::io::Write) {
    let _ = writeln!(
        to,
        "Usage: tables [<command>] [--quick] [--seed N] [--iters N] [--warmup N] [--json PATH]\n"
    );
    let _ = writeln!(to, "Commands (default: all):");
    for c in COMMANDS {
        let _ = writeln!(to, "  {:<12} {}", c.name, c.about);
    }
    let _ = writeln!(
        to,
        "\nFlags:\n  --quick       shrink iteration counts / windows for CI liveness runs\n  \
         --seed N      deterministic seed (chaos scenarios, load RNG streams)\n  \
         --iters N     iteration override (per-command meaning)\n  \
         --warmup N    warmup transactions before measuring\n  \
         --json PATH   write the run's report rows as a versioned BENCH json file\n  \
         --help        this text"
    );
}

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flags =
        Flags { quick: false, seed: 0xC4A0_05ED, iters: None, warmup: None, json: None, arg: None };
    let mut command: Option<String> = None;

    let bad = |what: &str| -> i32 {
        eprintln!("tables: {what}\n");
        usage(std::io::stderr());
        2
    };

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                usage(std::io::stdout());
                return 0;
            }
            "--quick" => flags.quick = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => flags.seed = v,
                None => return bad("--seed needs a number"),
            },
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => flags.iters = Some(v),
                None => return bad("--iters needs a number"),
            },
            "--warmup" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => flags.warmup = Some(v),
                None => return bad("--warmup needs a number"),
            },
            "--json" => match it.next() {
                Some(v) => flags.json = Some(v.clone()),
                None => return bad("--json needs a path"),
            },
            flag if flag.starts_with('-') => {
                return bad(&format!("unknown flag '{flag}'"));
            }
            positional if command.is_none() => command = Some(positional.to_string()),
            positional if flags.arg.is_none() => flags.arg = Some(positional.to_string()),
            extra => return bad(&format!("unexpected argument '{extra}'")),
        }
    }

    let name = command.as_deref().unwrap_or("all");
    match COMMANDS.iter().find(|c| c.name == name) {
        Some(c) => (c.run)(&flags),
        None => bad(&format!("unknown command '{name}'")),
    }
}

/// Runs a registered workload, prints its tables, honors `--json`, and
/// turns a failed acceptance gate into exit 1.
fn workload(name: &str, flags: &Flags) -> i32 {
    let w = registry().into_iter().find(|w| w.name() == name).expect("registered workload");
    eprintln!("{name}: {} …", w.describe());
    match w.run(&flags.run_opts()) {
        Ok(out) => finish(name, out, flags),
        Err(e) => {
            eprintln!("{name} FAILED: {e}");
            eprintln!("reproduce with: tables {name} --seed {}", flags.seed);
            1
        }
    }
}

/// Prints a finished run, merges `--json`, and maps the gate to the
/// exit code. An existing bench file is upsert-merged (rows keyed on
/// workload/scenario/mode/config), so one dated file accumulates every
/// workload's rows without duplicates.
fn finish(name: &str, out: WorkloadOutput, flags: &Flags) -> i32 {
    print!("{}", out.text);
    if let Some(path) = &flags.json {
        let fresh = out.reports.len();
        let mut file = match std::fs::read_to_string(path) {
            Ok(text) => match BenchFile::parse(&text) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{name} FAILED: existing {path} is not a valid bench file: {e}");
                    return 1;
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BenchFile::new(today(), vec![]),
            Err(e) => {
                eprintln!("{name} FAILED: cannot read {path}: {e}");
                return 1;
            }
        };
        file.generated = today();
        file.upsert(out.reports);
        if let Err(e) = std::fs::write(path, file.to_json()) {
            eprintln!("{name} FAILED: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("merged {fresh} report row(s) into {path} ({} total)", file.runs.len());
    }
    match out.gate_failure {
        Some(gate) => {
            eprintln!("{name} FAILED: {gate}");
            1
        }
        None => 0,
    }
}

/// Today's civil date (UTC) without a clock library.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Boots the benchmark cluster and runs the fourteen benchmarks with the
/// shared `--iters`/`--warmup`/`--quick` semantics.
fn measured(flags: &Flags) -> Vec<tabs_perf::BenchResult> {
    let warmup = flags.warmup.unwrap_or(if flags.quick { 2 } else { 8 });
    let iters = flags.iters.unwrap_or(if flags.quick { 3 } else { 40 });
    eprintln!("booting three-node cluster; {iters} iterations per benchmark …");
    bench::run_all(warmup, iters)
}

/// Shared tail for the measured-table commands: print one rendered
/// table, expose the same rows via `--json`.
fn measured_table(flags: &Flags, render: fn(&[tabs_perf::BenchResult]) -> String) -> i32 {
    let results = measured(flags);
    let out = WorkloadOutput {
        text: render(&results),
        reports: tabs_perf::paper::reports(&results),
        gate_failure: None,
    };
    finish("tables", out, flags)
}

fn table5_1(flags: &Flags) -> i32 {
    finish(
        "table5_1",
        WorkloadOutput { text: tables::table_5_1(), reports: vec![], gate_failure: None },
        flags,
    )
}

fn table5_5(flags: &Flags) -> i32 {
    finish(
        "table5_5",
        WorkloadOutput { text: tables::table_5_5(), reports: vec![], gate_failure: None },
        flags,
    )
}

fn table5_2(flags: &Flags) -> i32 {
    measured_table(flags, tables::table_5_2)
}

fn table5_3(flags: &Flags) -> i32 {
    measured_table(flags, tables::table_5_3)
}

fn table5_4(flags: &Flags) -> i32 {
    measured_table(flags, tables::table_5_4)
}

fn shapes(flags: &Flags) -> i32 {
    measured_table(flags, tables::shape_report)
}

fn accounting(flags: &Flags) -> i32 {
    measured_table(flags, tables::accounting)
}

/// Validates a `BENCH_*.json` file: parses it (schema version and field
/// shapes), then checks liveness — every row committed work, and no bank
/// run reported a conservation violation. No performance assertions.
fn checkbench(flags: &Flags) -> i32 {
    let Some(path) = &flags.arg else {
        eprintln!("tables: checkbench needs a path\n");
        usage(std::io::stderr());
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("checkbench FAILED: cannot read {path}: {e}");
            return 1;
        }
    };
    let file = match BenchFile::parse(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("checkbench FAILED: {path}: {e}");
            return 1;
        }
    };
    if file.runs.is_empty() {
        eprintln!("checkbench FAILED: {path}: no report rows");
        return 1;
    }
    for r in &file.runs {
        let label = format!("{}/{}/{}", r.workload, r.scenario, r.mode);
        if r.committed == 0 {
            eprintln!("checkbench FAILED: {label} committed nothing");
            return 1;
        }
        if r.config.get("invariant_ok").is_some_and(|v| v != "true") {
            eprintln!("checkbench FAILED: {label} reported a violated invariant");
            return 1;
        }
    }
    println!(
        "{path}: schema {} generated {}, {} run(s), all live",
        file.schema,
        file.generated,
        file.runs.len()
    );
    0
}

/// Boots a traced two-node cluster, commits one distributed write, and
/// renders the transaction's swimlane timeline plus the coordinator's
/// metric registry.
fn trace(_flags: &Flags) -> i32 {
    use tabs_core::prelude::*;
    use tabs_servers::{IntArrayClient, IntArrayServer};

    eprintln!("booting two-node traced cluster …");
    let cluster =
        Cluster::with_config(ClusterConfig::default().trace(true).deadlock_detection(true));
    let n1 = cluster.boot_node(NodeId(1));
    let n2 = cluster.boot_node(NodeId(2));
    let a1 = IntArrayServer::spawn(&n1, "arr-1", 64).expect("local array");
    let a2 = IntArrayServer::spawn(&n2, "arr-2", 64).expect("remote array");
    n1.recover().expect("recover node 1");
    n2.recover().expect("recover node 2");

    let (remote_port, _) = n1
        .resolve("arr-2", 1, Duration::from_secs(2))
        .into_iter()
        .next()
        .expect("remote array resolvable");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = IntArrayClient::new(app.clone(), remote_port);

    let tid = app.begin_transaction(Tid::NULL).expect("begin");
    local.set(tid, 0, 17).expect("local write");
    remote.set(tid, 0, 34).expect("remote write");
    let outcome = app.end_transaction(tid).expect("end");
    assert!(outcome.is_committed(), "distributed write must commit");

    // Commit chases phase-2 acks synchronously, so by now the timeline
    // holds the whole protocol exchange.
    print!("{}", cluster.timeline().render_swimlane(tid));

    // Second act: a manufactured cross-node deadlock, so the detector's
    // probe exchange and victim broadcast show up in a swimlane too.
    eprintln!();
    eprintln!("manufacturing a cross-node deadlock for the detector …");
    let app2 = n2.app();
    let c2_local = IntArrayClient::new(app2.clone(), a2.send_right());
    let (r1_port, _) = n2
        .resolve("arr-1", 1, Duration::from_secs(2))
        .into_iter()
        .next()
        .expect("arr-1 resolvable from node 2");
    let c2_remote = IntArrayClient::new(app2.clone(), r1_port);

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let side = |app: tabs_core::AppHandle,
                first: IntArrayClient,
                second: IntArrayClient,
                barrier: std::sync::Arc<std::sync::Barrier>| {
        std::thread::spawn(move || {
            let t = app.begin_transaction(Tid::NULL).expect("begin");
            first.add(t, 1, 1).expect("first lock");
            barrier.wait();
            match second.add(t, 1, 1) {
                Ok(_) => {
                    app.end_transaction(t).expect("end");
                    (t, false)
                }
                Err(_) => {
                    let _ = app.abort_transaction(t);
                    (t, true)
                }
            }
        })
    };
    let h1 = side(app.clone(), local, remote, std::sync::Arc::clone(&barrier));
    let h2 = side(app2, c2_local, c2_remote, barrier);
    let (t1, dead1) = h1.join().expect("side 1");
    let (t2, dead2) = h2.join().expect("side 2");
    assert!(dead1 ^ dead2, "exactly one side must be the deadlock victim");
    let (victim, survivor) = if dead1 { (t1, t2) } else { (t2, t1) };
    // Probes are traced under the waiter whose scan initiated them, so
    // the exchange may land in either lane; render both.
    eprintln!("victim {victim} — its swimlane (victim broadcast, abort):");
    print!("{}", cluster.timeline().render_swimlane(victim));
    eprintln!();
    eprintln!("survivor {survivor} — its swimlane (probes, resumed lock, commit):");
    print!("{}", cluster.timeline().render_swimlane(survivor));

    eprintln!();
    eprintln!("node 1 metrics after the traced transactions:");
    eprint!("{}", cluster.metrics(NodeId(1)).render());

    n1.shutdown();
    n2.shutdown();

    // Third act: a partition on a heartbeat cluster — suspicion, heal,
    // and a node rebooting into a fresh incarnation. The failure
    // detector traces outside any transaction, so its swimlane rides the
    // null-transaction lane.
    eprintln!();
    eprintln!("partitioning a heartbeat cluster: suspicion, heal, rejoin …");
    let hb = tabs_core::HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspect_after: 3,
        probe_cap: Duration::from_millis(100),
    };
    let pc = Cluster::with_config(ClusterConfig::default().trace(true).heartbeat(hb));
    let p1 = pc.boot_node(NodeId(1));
    let p2 = pc.boot_node(NodeId(2));
    p1.recover().expect("recover partition-demo node 1");
    p2.recover().expect("recover partition-demo node 2");

    let reaches = |node: &tabs_core::Node, peer: NodeId, up: bool, what: &str| {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !node.reachability().iter().any(|&(n, u)| n == peer && u == up) {
            assert!(std::time::Instant::now() < deadline, "never observed {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    // Let heartbeats flow first: a peer never heard from is not watched,
    // so there would be nothing to suspect.
    reaches(&p1, NodeId(2), true, "initial heartbeats");
    pc.network().partition(NodeId(1), NodeId(2));
    reaches(&p1, NodeId(2), false, "suspicion of the partitioned peer");
    pc.network().heal(NodeId(1), NodeId(2));
    reaches(&p1, NodeId(2), true, "reachability after heal");

    // Node 2 reboots on its durable disks: incarnation bump plus rejoin.
    p2.crash();
    let p2b = pc.boot_node(NodeId(2));
    p2b.recover().expect("recover rejoined node 2");

    print!("{}", pc.timeline().render_swimlane(Tid::NULL));
    p1.shutdown();
    p2b.shutdown();

    // Fourth act: reconfiguration — a live shard migration on a traced
    // sharded cluster. The engine's events (migration-start, the durable
    // ownership flip, shard-map-update, migration-done) happen outside
    // any one transaction, so they ride the null-transaction lane; the
    // copy itself is an ordinary distributed transaction.
    eprintln!();
    eprintln!("migrating a bank shard between live nodes …");
    use tabs_shard::{MigrateOptions, Migrator, Partitioning, ShardClient, ShardMap, ShardServer};
    let sc = Cluster::with_config(ClusterConfig::default().trace(true));
    let s1 = sc.boot_node(NodeId(1));
    let s2 = sc.boot_node(NodeId(2));
    let map = ShardMap {
        service: "bank".into(),
        version: 1,
        partitioning: Partitioning::Hash,
        owners: vec![NodeId(1), NodeId(1)],
        replicas: vec![Vec::new(); 2],
    };
    let (c1, _src_servers) = ShardServer::spawn_all(&s1, &map, 8).expect("source shard servers");
    let (c2, _dst_servers) =
        ShardServer::spawn_all(&s2, &map, 8).expect("destination shard servers");
    s1.recover().expect("recover shard source");
    s2.recover().expect("recover shard destination");
    s1.ns.publish_map("bank", map.version, map.to_blob());

    let bank = ShardClient::new(&s2, "bank").expect("shard router");
    let app_s2 = s2.app();
    let t = app_s2.begin_transaction(Tid::NULL).expect("begin");
    bank.set(t, 1, 500).expect("seed balance");
    assert!(app_s2.end_transaction(t).expect("end").is_committed(), "seed write must commit");

    let moved = Migrator::new()
        .migrate(&s1, &c1, &s2, &c2, 1, &MigrateOptions::default())
        .expect("live migration");
    eprintln!("shard bank.s1 now on node {} (map v{})", moved.owner(1), moved.version);

    let t = app_s2.begin_transaction(Tid::NULL).expect("begin");
    assert_eq!(bank.get(t, 1).expect("read after migration"), 500, "moved balance must survive");
    assert!(app_s2.end_transaction(t).expect("end").is_committed(), "read must commit");

    print!("{}", sc.timeline().render_swimlane(Tid::NULL));
    s1.shutdown();
    s2.shutdown();
    0
}

/// Runs the full crash-point sweeps plus the deterministic disk-fault
/// scenarios and reports coverage; exits non-zero with a reproduction
/// line on any invariant violation.
fn chaos(flags: &Flags) -> i32 {
    use tabs_chaos::{registry, ChaosRunner};

    let seed = flags.seed;
    eprintln!("chaos sweep, seed={seed} …");
    let runner = ChaosRunner::new(seed);
    let mut killed = std::collections::BTreeSet::new();
    let outcome = runner
        .sweep_single_node()
        .map(|k| killed.extend(k))
        .and_then(|()| runner.sweep_group_commit().map(|k| killed.extend(k)))
        .and_then(|()| runner.sweep_fastpath().map(|k| killed.extend(k)))
        .and_then(|()| runner.sweep_distributed().map(|k| killed.extend(k)))
        .and_then(|()| runner.sweep_migration().map(|k| killed.extend(k)))
        .and_then(|()| runner.sweep_replication().map(|k| killed.extend(k)))
        .and_then(|()| runner.torn_write_scenario())
        .and_then(|()| runner.transient_read_scenario());
    if let Err(e) = outcome {
        eprintln!("chaos FAILED: {e}");
        eprintln!("reproduce with: tables chaos --seed {seed}");
        return 1;
    }
    println!("crash points killed and recovered ({}):", killed.len());
    for p in &killed {
        println!("  {p}");
    }
    let missing: Vec<&str> = registry().into_iter().filter(|p| !killed.contains(p)).collect();
    if !missing.is_empty() {
        eprintln!("chaos FAILED: seed={seed} crash_point=none unswept points: {missing:?}");
        return 1;
    }
    println!("all {} registered crash points swept; invariants held.", killed.len());
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn help_text() -> String {
        let mut buf = Vec::new();
        usage(&mut buf);
        String::from_utf8(buf).expect("help is UTF-8")
    }

    /// Satellite guard against CLI/doc drift: `--help` must list every
    /// entry in the dispatch table.
    #[test]
    fn help_covers_the_whole_dispatch_table() {
        let help = help_text();
        for c in COMMANDS {
            assert!(
                help.lines().any(|l| l.trim_start().starts_with(&format!("{} ", c.name))),
                "--help does not list subcommand '{}'",
                c.name
            );
        }
    }

    /// Every workload in the perf registry is reachable from the CLI.
    #[test]
    fn every_registered_workload_has_a_subcommand() {
        for w in registry() {
            assert!(
                COMMANDS.iter().any(|c| c.name == w.name()),
                "registered workload '{}' has no subcommand",
                w.name()
            );
        }
    }

    /// The README subcommand table must mention every subcommand too.
    #[test]
    fn readme_subcommand_table_covers_the_dispatch_table() {
        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
                .expect("README.md at the workspace root");
        for c in COMMANDS {
            assert!(
                readme.contains(&format!("`{}`", c.name)),
                "README subcommand table does not mention `{}`",
                c.name
            );
        }
    }
}
