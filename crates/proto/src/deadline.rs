//! End-to-end deadlines.
//!
//! A client attaches an absolute [`Deadline`] to the work it issues on
//! behalf of a transaction; the deadline rides the [`crate::Request`]
//! header verbatim through Communication Manager relays, so every layer
//! downstream — lock waits, session retries, the two-phase-commit
//! coordinator — can cap its own waiting at the *remaining* budget
//! instead of its local worst-case time-out. A server that receives
//! already-expired work rejects it before touching any object
//! ([`crate::ServerError::DeadlineExceeded`]), which is what keeps retry
//! storms from doing dead work during overload.
//!
//! Deadlines are encoded as absolute microseconds since a process-wide
//! monotonic epoch. Every emulated node lives in one OS process, so the
//! value is exact across nodes and survives verbatim relay; a real
//! deployment would substitute a synchronized-clock timestamp and absorb
//! skew into the budget.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use tabs_codec::{Decode, DecodeError, Encode, Reader, Writer};

/// The process-wide monotonic epoch deadlines are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process epoch.
fn now_micros() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// An absolute point in time by which a piece of transactional work must
/// be finished, comparable across every node of the (single-process)
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline {
    micros: u64,
}

impl Deadline {
    /// The deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        let budget = u64::try_from(budget.as_micros()).unwrap_or(u64::MAX);
        Self { micros: now_micros().saturating_add(budget) }
    }

    /// Reconstructs a deadline from its wire representation.
    pub fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// The wire representation: absolute microseconds since the process
    /// epoch.
    pub fn as_micros(&self) -> u64 {
        self.micros
    }

    /// Budget left before the deadline ([`Duration::ZERO`] once past).
    pub fn remaining(&self) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(now_micros()))
    }

    /// Whether the deadline has passed.
    pub fn is_expired(&self) -> bool {
        now_micros() >= self.micros
    }

    /// Caps a local wait at the remaining budget: `min(wait, remaining)`.
    pub fn cap(&self, wait: Duration) -> Duration {
        wait.min(self.remaining())
    }

    /// The earlier of two deadlines.
    pub fn min(self, other: Deadline) -> Deadline {
        if other.micros < self.micros {
            other
        } else {
            self
        }
    }
}

impl Encode for Deadline {
    fn encode(&self, w: &mut Writer) {
        self.micros.encode(w);
    }
}

impl Decode for Deadline {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Deadline { micros: u64::decode(r)? })
    }
}

/// Cluster-wide deadline policy (`ClusterConfig::deadlines`): when set,
/// every top-level transaction an application begins is assigned this
/// budget, and every call it issues carries the resulting absolute
/// deadline. `None` keeps the seed behaviour — no deadline field on the
/// wire, byte-identical request encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// Default end-to-end budget per top-level transaction.
    pub default_budget: Duration,
}

impl DeadlinePolicy {
    /// A policy granting each transaction `budget` end to end.
    pub fn with_budget(budget: Duration) -> Self {
        Self { default_budget: budget }
    }
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        // Generous relative to the 300ms default lock time-out: ordinary
        // transactions never notice the budget; only pathological waits
        // and overload backlogs run into it.
        Self { default_budget: Duration::from_secs(2) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_orders_and_expires() {
        let near = Deadline::after(Duration::from_millis(1));
        let far = Deadline::after(Duration::from_secs(60));
        assert!(near < far);
        assert_eq!(near.min(far), near);
        assert!(!far.is_expired());
        assert!(far.remaining() > Duration::from_secs(50));
        std::thread::sleep(Duration::from_millis(2));
        assert!(near.is_expired());
        assert_eq!(near.remaining(), Duration::ZERO);
    }

    #[test]
    fn cap_limits_waits_to_remaining_budget() {
        let d = Deadline::after(Duration::from_millis(50));
        assert!(d.cap(Duration::from_secs(2)) <= Duration::from_millis(50));
        assert_eq!(d.cap(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn wire_roundtrip() {
        let d = Deadline::after(Duration::from_millis(500));
        let bytes = d.encode_to_vec();
        assert_eq!(Deadline::decode_all(&bytes).unwrap(), d);
    }
}
