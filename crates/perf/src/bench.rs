//! The fourteen benchmark transactions of §5, driven against a live
//! three-node cluster.
//!
//! "The benchmarks are among the simplest that can be designed to produce
//! the desired system behavior. There are four dimensions of system
//! behavior that the benchmarks exercise. First, some benchmarks are
//! read-only while others modify data. Second, benchmarks either cause no
//! page faults, cause random page faults, or read pages sequentially.
//! Third, benchmarks either perform a single data server operation on each
//! node or perform multiple data server operations on one of the nodes.
//! Finally, benchmarks perform operations on one, two, or three nodes."
//!
//! The paging benchmarks use a large array "more than three times the
//! available physical memory" — here 1024 pages against a 256-frame
//! buffer pool (the paper used 5000 pages against a Perq's memory).
//!
//! Each run splits counter deltas at the commit point, reproducing the
//! paper's separation into the pre-commit counts (Table 5-2) and commit
//! counts (Table 5-3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tabs_app_lib::{AppError, AppHandle};
use tabs_core::{Cluster, ClusterConfig, Node, NodeId, Tid};
use tabs_kernel::{PerfSnapshot, PAGE_SIZE};
use tabs_servers::harness::client_for;
use tabs_servers::{IntArrayClient, IntArrayServer};

/// Pool frames per node in the benchmark cluster.
pub const POOL_PAGES: usize = 256;
/// Pages in each "large" paging array (4× the pool, as the paper's 5000
/// pages exceeded 3× physical memory).
pub const BIG_PAGES: u64 = 1024;
/// Cells per page (one-word integers).
pub const CELLS_PER_PAGE: u64 = PAGE_SIZE as u64 / 8;

/// Which commit-protocol row of Table 5-3 a benchmark exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommitClass {
    /// 1 Node, Read Only.
    OneNodeRead,
    /// 1 Node, Write.
    OneNodeWrite,
    /// 2 Node, Read Only.
    TwoNodeRead,
    /// 2 Node, Write.
    TwoNodeWrite,
    /// 3 Node, Read Only.
    ThreeNodeRead,
    /// 3 Node, Write.
    ThreeNodeWrite,
}

impl CommitClass {
    /// Row label matching Table 5-3.
    pub fn label(&self) -> &'static str {
        match self {
            CommitClass::OneNodeRead => "1 Node, Read Only",
            CommitClass::OneNodeWrite => "1 Node, Write",
            CommitClass::TwoNodeRead => "2 Node, Read Only",
            CommitClass::TwoNodeWrite => "2 Node, Write",
            CommitClass::ThreeNodeRead => "3 Node, Read Only",
            CommitClass::ThreeNodeWrite => "3 Node, Write",
        }
    }
}

/// The live cluster the benchmarks run against.
pub struct BenchWorld {
    /// The cluster (counters, network).
    pub cluster: Arc<Cluster>,
    _servers: Vec<IntArrayServer>,
    nodes: Vec<Node>,
    /// Application handle on node 1.
    pub app: AppHandle,
    /// Small resident array on node 1.
    pub local_small: IntArrayClient,
    /// Large paging array on node 1.
    pub local_big: IntArrayClient,
    /// Small arrays on nodes 2 and 3 (via Communication Manager proxies).
    pub remote_small: Vec<IntArrayClient>,
    /// Large paging array on node 2.
    pub remote_big: IntArrayClient,
    seq_cursor: AtomicU64,
    remote_seq_cursor: AtomicU64,
    rng: Mutex<StdRng>,
}

impl BenchWorld {
    /// Boots the three-node benchmark cluster with all arrays in place.
    pub fn new() -> Self {
        let cluster = Cluster::with_config(ClusterConfig::default().pool_pages(POOL_PAGES));
        let mut nodes = Vec::new();
        let mut servers = Vec::new();
        for i in 1..=3u16 {
            let node = cluster.boot_node(NodeId(i));
            let small =
                IntArrayServer::spawn(&node, &format!("small{i}"), 100).expect("small array");
            servers.push(small);
            if i <= 2 {
                let big =
                    IntArrayServer::spawn(&node, &format!("big{i}"), BIG_PAGES * CELLS_PER_PAGE)
                        .expect("big array");
                servers.push(big);
            }
            node.recover().expect("recovery");
            nodes.push(node);
        }
        let n1 = &nodes[0];
        let app = n1.app();
        let local_small = client_for(n1, "small1");
        let local_big = client_for(n1, "big1");
        let remote_small = vec![client_for(n1, "small2"), client_for(n1, "small3")];
        let remote_big = client_for(n1, "big2");
        Self {
            _servers: servers,
            cluster,
            nodes,
            app,
            local_small,
            local_big,
            remote_small,
            remote_big,
            seq_cursor: AtomicU64::new(0),
            remote_seq_cursor: AtomicU64::new(0),
            rng: Mutex::new(StdRng::seed_from_u64(0x5eed)),
        }
    }

    /// Sequentially advancing cell index on the local big array: one new
    /// page per call.
    pub fn next_seq_cell(&self) -> u64 {
        let page = self.seq_cursor.fetch_add(1, Ordering::Relaxed) % BIG_PAGES;
        page * CELLS_PER_PAGE
    }

    /// Sequential cursor for the remote big array.
    pub fn next_remote_seq_cell(&self) -> u64 {
        let page = self.remote_seq_cursor.fetch_add(1, Ordering::Relaxed) % BIG_PAGES;
        page * CELLS_PER_PAGE
    }

    /// Uniformly random cell on the local big array.
    pub fn random_cell(&self) -> u64 {
        let page = self.rng.lock().gen_range(0..BIG_PAGES);
        page * CELLS_PER_PAGE
    }

    /// Orderly shutdown of the whole cluster.
    pub fn shutdown(self) {
        for n in self.nodes {
            n.shutdown();
        }
    }
}

impl Default for BenchWorld {
    fn default() -> Self {
        Self::new()
    }
}

type BenchFn = Arc<dyn Fn(&BenchWorld, Tid) -> Result<(), AppError> + Send + Sync>;

/// One benchmark definition.
pub struct Benchmark {
    /// Row label matching Table 5-4.
    pub name: &'static str,
    /// Nodes the benchmark touches.
    pub nodes: usize,
    /// Whether it modifies data.
    pub writes: bool,
    /// The commit-protocol class (Table 5-3 row).
    pub commit_class: CommitClass,
    /// The transaction body.
    pub body: BenchFn,
}

/// Measured results for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Row label.
    pub name: &'static str,
    /// Commit class.
    pub commit_class: CommitClass,
    /// Transactions measured.
    pub iters: u32,
    /// Mean elapsed wall time per transaction, microseconds.
    pub elapsed_us: f64,
    /// Mean pre-commit primitive counts per transaction (Table 5-2 row).
    pub pre_counts: [f64; 9],
    /// Mean commit-phase primitive counts per transaction (Table 5-3 row).
    pub commit_counts: [f64; 9],
}

impl BenchResult {
    /// Total per-transaction counts (pre-commit + commit).
    pub fn total_counts(&self) -> [f64; 9] {
        let mut t = [0.0; 9];
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = self.pre_counts[i] + self.commit_counts[i];
        }
        t
    }
}

fn snapshot_to_f(delta: PerfSnapshot) -> [f64; 9] {
    let mut out = [0.0; 9];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = delta.0[i] as f64;
    }
    out
}

/// Runs one benchmark: `warmup` unmeasured transactions, then `iters`
/// measured ones, splitting counters at the commit point.
pub fn run(bench: &Benchmark, world: &BenchWorld, warmup: u32, iters: u32) -> BenchResult {
    for _ in 0..warmup {
        let _ = world.app.run(|tid| (bench.body)(world, tid));
    }
    let mut pre = [0.0f64; 9];
    let mut com = [0.0f64; 9];
    let mut elapsed = Duration::ZERO;
    let mut measured = 0u32;
    for _ in 0..iters {
        let s0 = world.cluster.perf_all();
        let t0 = Instant::now();
        let tid = match world.app.begin_transaction(Tid::NULL) {
            Ok(t) => t,
            Err(_) => continue,
        };
        if (bench.body)(world, tid).is_err() {
            let _ = world.app.abort_transaction(tid);
            continue;
        }
        let s1 = world.cluster.perf_all();
        if !world.app.end_transaction(tid).is_ok_and(|o| o.is_committed()) {
            continue;
        }
        elapsed += t0.elapsed();
        let s2 = world.cluster.perf_all();
        let dpre = snapshot_to_f(s1.since(&s0));
        let dcom = snapshot_to_f(s2.since(&s1));
        for i in 0..9 {
            pre[i] += dpre[i];
            com[i] += dcom[i];
        }
        measured += 1;
    }
    let n = measured.max(1) as f64;
    for i in 0..9 {
        pre[i] /= n;
        com[i] /= n;
    }
    BenchResult {
        name: bench.name,
        commit_class: bench.commit_class,
        iters: measured,
        elapsed_us: elapsed.as_secs_f64() * 1e6 / n,
        pre_counts: pre,
        commit_counts: com,
    }
}

/// The fourteen benchmarks of Table 5-4, in table order.
pub fn benchmarks() -> Vec<Benchmark> {
    let mut v: Vec<Benchmark> = Vec::new();

    v.push(Benchmark {
        name: "1 Local Read, No Paging",
        nodes: 1,
        writes: false,
        commit_class: CommitClass::OneNodeRead,
        body: Arc::new(|w, t| w.local_small.get(t, 0).map(|_| ())),
    });
    v.push(Benchmark {
        name: "5 Local Read, No Paging",
        nodes: 1,
        writes: false,
        commit_class: CommitClass::OneNodeRead,
        body: Arc::new(|w, t| {
            for _ in 0..5 {
                w.local_small.get(t, 0)?;
            }
            Ok(())
        }),
    });
    v.push(Benchmark {
        name: "1 Local Read, Seq. Paging",
        nodes: 1,
        writes: false,
        commit_class: CommitClass::OneNodeRead,
        body: Arc::new(|w, t| {
            let cell = w.next_seq_cell();
            w.local_big.get(t, cell).map(|_| ())
        }),
    });
    v.push(Benchmark {
        name: "1 Local Read, Random Paging",
        nodes: 1,
        writes: false,
        commit_class: CommitClass::OneNodeRead,
        body: Arc::new(|w, t| {
            let cell = w.random_cell();
            w.local_big.get(t, cell).map(|_| ())
        }),
    });
    v.push(Benchmark {
        name: "1 Local Write, No Paging",
        nodes: 1,
        writes: true,
        commit_class: CommitClass::OneNodeWrite,
        body: Arc::new(|w, t| w.local_small.set(t, 0, 1)),
    });
    v.push(Benchmark {
        name: "5 Local Write, No Paging",
        nodes: 1,
        writes: true,
        commit_class: CommitClass::OneNodeWrite,
        body: Arc::new(|w, t| {
            for i in 0..5 {
                w.local_small.set(t, i, 1)?;
            }
            Ok(())
        }),
    });
    v.push(Benchmark {
        name: "1 Local Write, Seq. Paging",
        nodes: 1,
        writes: true,
        commit_class: CommitClass::OneNodeWrite,
        body: Arc::new(|w, t| {
            let cell = w.next_seq_cell();
            w.local_big.set(t, cell, 1)
        }),
    });
    v.push(Benchmark {
        name: "1 Lcl Rd, 1 Rem Rd, No Paging",
        nodes: 2,
        writes: false,
        commit_class: CommitClass::TwoNodeRead,
        body: Arc::new(|w, t| {
            w.local_small.get(t, 0)?;
            w.remote_small[0].get(t, 0).map(|_| ())
        }),
    });
    v.push(Benchmark {
        name: "1 Lcl Rd, 5 Rem Rd, No Paging",
        nodes: 2,
        writes: false,
        commit_class: CommitClass::TwoNodeRead,
        body: Arc::new(|w, t| {
            w.local_small.get(t, 0)?;
            for _ in 0..5 {
                w.remote_small[0].get(t, 0)?;
            }
            Ok(())
        }),
    });
    v.push(Benchmark {
        name: "1 Lcl Rd, 1 Rem Rd, Seq. Paging",
        nodes: 2,
        writes: false,
        commit_class: CommitClass::TwoNodeRead,
        body: Arc::new(|w, t| {
            let lc = w.next_seq_cell();
            w.local_big.get(t, lc)?;
            let rc = w.next_remote_seq_cell();
            w.remote_big.get(t, rc).map(|_| ())
        }),
    });
    v.push(Benchmark {
        name: "1 Lcl Wr, 1 Rem Wr, No Paging",
        nodes: 2,
        writes: true,
        commit_class: CommitClass::TwoNodeWrite,
        body: Arc::new(|w, t| {
            w.local_small.set(t, 0, 1)?;
            w.remote_small[0].set(t, 0, 1)
        }),
    });
    v.push(Benchmark {
        name: "1 Lcl Wr, 1 Rem Wr, Seq. Paging",
        nodes: 2,
        writes: true,
        commit_class: CommitClass::TwoNodeWrite,
        body: Arc::new(|w, t| {
            let lc = w.next_seq_cell();
            w.local_big.set(t, lc, 1)?;
            let rc = w.next_remote_seq_cell();
            w.remote_big.set(t, rc, 1)
        }),
    });
    v.push(Benchmark {
        name: "1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP",
        nodes: 3,
        writes: false,
        commit_class: CommitClass::ThreeNodeRead,
        body: Arc::new(|w, t| {
            w.local_small.get(t, 0)?;
            w.remote_small[0].get(t, 0)?;
            w.remote_small[1].get(t, 0).map(|_| ())
        }),
    });
    v.push(Benchmark {
        name: "1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP",
        nodes: 3,
        writes: true,
        commit_class: CommitClass::ThreeNodeWrite,
        body: Arc::new(|w, t| {
            w.local_small.set(t, 0, 1)?;
            w.remote_small[0].set(t, 0, 1)?;
            w.remote_small[1].set(t, 0, 1)
        }),
    });
    v
}

/// Runs every benchmark against one shared world.
pub fn run_all(warmup: u32, iters: u32) -> Vec<BenchResult> {
    let world = BenchWorld::new();
    let results = benchmarks().iter().map(|b| run(b, &world, warmup, iters)).collect();
    world.shutdown();
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_kernel::PrimitiveOp;

    /// One shared world; each check runs a couple of benchmarks against it.
    #[test]
    fn benchmark_counts_match_expected_shapes() {
        let world = BenchWorld::new();
        let all = benchmarks();
        let by_name = |n: &str| all.iter().find(|b| b.name == n).unwrap();

        // 1 local read: exactly one data-server call, no stable write.
        let r = run(by_name("1 Local Read, No Paging"), &world, 3, 10);
        assert_eq!(r.iters, 10);
        let t = r.total_counts();
        assert!((t[PrimitiveOp::DataServerCall as usize] - 1.0).abs() < 0.01, "{t:?}");
        assert_eq!(t[PrimitiveOp::StableStorageWrite as usize], 0.0, "read-only commit is free");
        assert_eq!(t[PrimitiveOp::Datagram as usize], 0.0);

        // 5 local reads: five data-server calls; the increment over one
        // read deduces the per-operation cost, as §5.1 describes.
        let r5 = run(by_name("5 Local Read, No Paging"), &world, 3, 10);
        let t5 = r5.total_counts();
        assert!((t5[PrimitiveOp::DataServerCall as usize] - 5.0).abs() < 0.01);

        // 1 local write: one stable-storage write on the commit path, and
        // the log-spool message in the pre-commit phase.
        let w = run(by_name("1 Local Write, No Paging"), &world, 3, 10);
        assert!((w.commit_counts[PrimitiveOp::StableStorageWrite as usize] - 1.0).abs() < 0.01);
        assert!(w.pre_counts[PrimitiveOp::SmallContiguousMessage as usize] > 0.0);

        world.shutdown();
    }

    #[test]
    fn paging_benchmarks_fault() {
        let world = BenchWorld::new();
        let all = benchmarks();
        let by_name = |n: &str| all.iter().find(|b| b.name == n).unwrap();

        let seq = run(by_name("1 Local Read, Seq. Paging"), &world, 5, 20);
        let t = seq.total_counts();
        let seq_reads = t[PrimitiveOp::SequentialRead as usize];
        assert!(seq_reads > 0.5, "sequential paging reads faulted ({seq_reads}/txn)");

        let rnd = run(by_name("1 Local Read, Random Paging"), &world, 5, 20);
        let tr = rnd.total_counts();
        assert!(
            tr[PrimitiveOp::RandomAccessPagedIo as usize] > 0.4,
            "random paging faulted ({tr:?})"
        );
        world.shutdown();
    }

    #[test]
    fn remote_benchmarks_use_sessions_and_datagrams() {
        let world = BenchWorld::new();
        let all = benchmarks();
        let by_name = |n: &str| all.iter().find(|b| b.name == n).unwrap();

        let rr = run(by_name("1 Lcl Rd, 1 Rem Rd, No Paging"), &world, 2, 5);
        let t = rr.total_counts();
        assert!((t[PrimitiveOp::InterNodeDataServerCall as usize] - 1.0).abs() < 0.01);
        assert!((t[PrimitiveOp::DataServerCall as usize] - 1.0).abs() < 0.01);
        // Read-only 2PC: prepare + read-only vote = 2 datagrams.
        assert!((rr.commit_counts[PrimitiveOp::Datagram as usize] - 2.0).abs() < 0.51);

        let rw = run(by_name("1 Lcl Wr, 1 Rem Wr, No Paging"), &world, 2, 5);
        // Write 2PC costs more datagrams than read-only (prepare, yes,
        // commit, ack = 4).
        assert!(
            rw.commit_counts[PrimitiveOp::Datagram as usize]
                > rr.commit_counts[PrimitiveOp::Datagram as usize] + 1.0,
            "write commit {} vs read commit {}",
            rw.commit_counts[PrimitiveOp::Datagram as usize],
            rr.commit_counts[PrimitiveOp::Datagram as usize]
        );
        // Both sides force: two stable-storage writes total.
        assert!(rw.commit_counts[PrimitiveOp::StableStorageWrite as usize] >= 1.9);
        world.shutdown();
    }

    #[test]
    fn three_node_write_exceeds_two_node_write() {
        let world = BenchWorld::new();
        let all = benchmarks();
        let by_name = |n: &str| all.iter().find(|b| b.name == n).unwrap();
        let two = run(by_name("1 Lcl Wr, 1 Rem Wr, No Paging"), &world, 2, 5);
        let three = run(by_name("1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP"), &world, 2, 5);
        assert!(
            three.total_counts()[PrimitiveOp::Datagram as usize]
                > two.total_counts()[PrimitiveOp::Datagram as usize],
            "three-node commit sends more datagrams"
        );
        assert!(
            three.total_counts()[PrimitiveOp::StableStorageWrite as usize]
                > two.total_counts()[PrimitiveOp::StableStorageWrite as usize]
        );
        world.shutdown();
    }
}
