//! Regenerates every table of the paper's §5 evaluation.
//!
//! Usage:
//!
//! ```text
//! tables [table5_1|table5_2|table5_3|table5_4|table5_5|shapes|accounting|all] [--iters N] [--warmup N]
//! ```
//!
//! Tables 5-2, 5-3, 5-4, the shape report and the accounting section are
//! *measured*: a three-node cluster is booted and the fourteen benchmark
//! transactions run against it with instrumented primitive counters.

use tabs_perf::{bench, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut iters = 40u32;
    let mut warmup = 8u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iters N");
            }
            "--warmup" => {
                warmup = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--warmup N");
            }
            other => which = other.to_string(),
        }
    }

    // The static tables need no measurement.
    match which.as_str() {
        "table5_1" => {
            print!("{}", tables::table_5_1());
            return;
        }
        "table5_5" => {
            print!("{}", tables::table_5_5());
            return;
        }
        _ => {}
    }

    eprintln!("booting three-node cluster; {iters} iterations per benchmark …");
    let results = bench::run_all(warmup, iters);
    match which.as_str() {
        "table5_2" => print!("{}", tables::table_5_2(&results)),
        "table5_3" => print!("{}", tables::table_5_3(&results)),
        "table5_4" => print!("{}", tables::table_5_4(&results)),
        "shapes" => print!("{}", tables::shape_report(&results)),
        "accounting" => print!("{}", tables::accounting(&results)),
        _ => print!("{}", tables::full_report(&results)),
    }
}
