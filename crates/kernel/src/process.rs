//! Helpers for writing TABS processes (receive → dispatch → reply loops).
//!
//! §2.1.1: "Servers that never wait while processing an operation can be
//! organized as a loop that receives a request message, dispatches to
//! execute the operation, and sends a response message." System processes
//! (TM, RM, CM, NS) all follow this shape; the server library layers the
//! coroutine mechanism on top for data servers that *do* wait.

use crate::msg::Message;
use crate::port::{Kernel, PortClass, ReceiveRight, RecvError, SendRight};

/// Outcome of handling one request in a [`spawn_server`] loop.
pub enum Served {
    /// Continue serving.
    Continue,
    /// Exit the loop (used for orderly process termination in tests).
    Stop,
}

/// Runs a standard request loop on `port` inside a spawned process.
///
/// The handler receives each message; if it returns a reply body and the
/// message carried a reply port, the reply is sent back automatically.
/// The loop exits when the kernel shuts down.
pub fn spawn_server<F>(kernel: &Kernel, name: &str, port: ReceiveRight, mut handler: F)
where
    F: FnMut(&Message) -> Option<Message> + Send + 'static,
{
    kernel.spawn(name, move || loop {
        match port.recv() {
            Ok(msg) => {
                let reply_body = handler(&msg);
                if let (Some(reply), Some(r)) = (reply_body, msg.reply.as_ref()) {
                    // Replies to a dead client are dropped silently, as in
                    // Accent: the client may have timed out and gone away.
                    let _ = r.send_unmetered(reply);
                }
            }
            Err(RecvError::ShutDown) => return,
            Err(RecvError::Timeout) => unreachable!("recv() does not time out"),
        }
    });
}

/// Performs a metered request/response exchange against a system port.
///
/// Both the request and the reply are counted as local messages (the
/// paper's small/large/pointer classes). Data-server calls go through the
/// RPC layer in `tabs-proto` instead, which counts the whole exchange as a
/// single Data-Server-Call primitive.
pub fn call_system(
    kernel: &Kernel,
    target: &SendRight,
    msg: Message,
    timeout: std::time::Duration,
) -> Result<Message, RecvError> {
    let (reply_tx, reply_rx) = kernel.allocate_port(PortClass::Reply);
    let msg = msg.with_reply(reply_tx);
    if target.send(msg).is_err() {
        return Err(RecvError::ShutDown);
    }
    let reply = reply_rx.recv_timeout(timeout)?;
    // Count the reply's class as well: it is a real local message.
    kernel.perf().record(reply.class());
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::perfctr::PrimitiveOp;
    use std::time::Duration;

    #[test]
    fn spawn_server_replies() {
        let k = Kernel::new(NodeId(1));
        let (tx, rx) = k.allocate_port(PortClass::System);
        spawn_server(&k, "doubler", rx, |m| {
            Some(Message::new(m.op, m.body.iter().map(|b| b * 2).collect()))
        });
        let reply =
            call_system(&k, &tx, Message::new(1, vec![3, 4]), Duration::from_secs(1)).unwrap();
        assert_eq!(reply.body, vec![6, 8]);
        k.shutdown();
        k.join_all();
    }

    #[test]
    fn call_system_counts_both_directions() {
        let k = Kernel::new(NodeId(1));
        let (tx, rx) = k.allocate_port(PortClass::System);
        spawn_server(&k, "echo", rx, |m| Some(Message::new(m.op, m.body.clone())));
        let before = k.perf().snapshot();
        call_system(&k, &tx, Message::new(1, vec![0; 10]), Duration::from_secs(1)).unwrap();
        let delta = k.perf().snapshot().since(&before);
        assert_eq!(delta.get(PrimitiveOp::SmallContiguousMessage), 2);
        k.shutdown();
        k.join_all();
    }

    #[test]
    fn call_system_times_out_without_server() {
        let k = Kernel::new(NodeId(1));
        let (tx, _rx) = k.allocate_port(PortClass::System);
        let r = call_system(&k, &tx, Message::new(1, vec![]), Duration::from_millis(20));
        assert_eq!(r.unwrap_err(), RecvError::Timeout);
    }

    #[test]
    fn call_system_to_dead_port_fails_fast() {
        let k = Kernel::new(NodeId(1));
        let (tx, rx) = k.allocate_port(PortClass::System);
        drop(rx);
        let r = call_system(&k, &tx, Message::new(1, vec![]), Duration::from_secs(5));
        assert_eq!(r.unwrap_err(), RecvError::ShutDown);
    }
}
