//! The Transaction Manager (§3.2.3).
//!
//! "The Transaction Manager's major responsibilities are implementing
//! commit protocols and allocating globally unique transaction
//! identifiers. Application processes and data servers send the Transaction
//! Manager messages to begin a transaction, to attempt to commit a
//! transaction, or to force a transaction to be aborted. The
//! tree-structured two-phase commit protocol used by the Transaction
//! Manager is based on a spanning tree where a node A is a parent of
//! another node B if and only if A were the first node to invoke an
//! operation on behalf of the transaction on B."
//!
//! Subtransactions (§2.1.3): "a subtransaction is not committed until its
//! top-level parent transaction commits, but a subtransaction can abort
//! without causing its parent transaction to abort." On subtransaction
//! commit the child's locks and enlistments transfer to the parent; its
//! tid joins the commit's *merged* set so remote participants recognize
//! its log records and locks at prepare time.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use tabs_kernel::crash::CrashHookSlot;
use tabs_kernel::{crash_point, CrashHooks, NodeId, PerfCounters, PrimitiveOp, Tid, WorkerPool};
use tabs_obs::{Counter, TraceCollector, TraceEvent, Vote as ObsVote};
use tabs_proto::{CommitMsg, Deadline};
use tabs_rm::RecoveryManager;
use tabs_wal::TxState;

/// Errors from transaction management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmError {
    /// Unknown or already-terminated transaction.
    Unknown(Tid),
    /// The transaction was already aborted (`TransactionIsAborted`).
    Aborted(Tid),
    /// Recovery-manager failure on the commit/abort path.
    Rm(String),
    /// A distributed commit could not gather votes in time.
    VoteTimeout(Tid),
}

impl std::fmt::Display for TmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TmError::Unknown(t) => write!(f, "unknown transaction {t}"),
            TmError::Aborted(t) => write!(f, "transaction {t} is aborted"),
            TmError::Rm(e) => write!(f, "recovery manager failure: {e}"),
            TmError::VoteTimeout(t) => write!(f, "vote collection timed out for {t}"),
        }
    }
}

impl std::error::Error for TmError {}

/// A local data server's hooks into transaction termination.
///
/// A data server enlists once per transaction ("sent by a data server the
/// first time it is asked to perform an operation on behalf of a particular
/// transaction; doing so enables the Transaction Manager to know which
/// servers it must inform when the transaction is being terminated").
pub trait Participant: Send + Sync {
    /// Phase 1: flush any buffered log data for `tid` and report whether
    /// the server performed updates on its behalf (false = read-only).
    fn prepare(&self, tid: Tid) -> Result<bool, String>;

    /// The transaction is resolved: release `tid`'s locks and clean up.
    fn finish(&self, tid: Tid, committed: bool);

    /// A subtransaction committed into its parent: transfer its locks.
    fn commit_subtransaction(&self, child: Tid, parent: Tid);
}

/// Outbound datagram path and spanning-tree queries, supplied by the
/// Communication Manager ("the information about a node's relation to the
/// nodes directly above and below it in the spanning tree is kept by its
/// Communication Manager", §3.2.3).
pub trait CommitTransport: Send + Sync {
    /// Sends a two-phase-commit datagram to `to`.
    fn send(&self, to: NodeId, msg: CommitMsg);

    /// Commit-tree children recorded for `tid`.
    fn children(&self, tid: Tid) -> Vec<NodeId>;

    /// Commit-tree parent, when `tid`'s work here was remotely initiated.
    fn parent(&self, tid: Tid) -> Option<NodeId>;

    /// Best-effort broadcast of a commit datagram to every other node
    /// (cooperative termination queries). Default: no peers.
    fn broadcast(&self, _msg: CommitMsg) {}

    /// Whether `to` is currently suspected unreachable by the failure
    /// detector. Default: never (no detector wired).
    fn unreachable(&self, _to: NodeId) -> bool {
        false
    }

    /// Whether every operation this node sent to `child` on behalf of
    /// `tid` targeted a replica-scoped port — a server whose writes the
    /// child's replica group fans out to every member. Only then may a
    /// quorum waiver stand in for the child's missing vote: its prepared
    /// state is held by the surviving members. A child with work outside
    /// its group (an unreplicated server it happens to host) must vote
    /// for itself, or the commit would silently drop those writes. A
    /// child with no recorded work for `tid` is vacuously replica-only.
    /// Default: `false` — transports that do not track call footprints
    /// disable the waiver entirely.
    fn replica_only(&self, _tid: Tid, _child: NodeId) -> bool {
        false
    }
}

/// A transport for single-node configurations: no remote sites ever.
#[derive(Debug, Default)]
pub struct NullTransport;

impl CommitTransport for NullTransport {
    fn send(&self, _to: NodeId, _msg: CommitMsg) {}
    fn children(&self, _tid: Tid) -> Vec<NodeId> {
        Vec::new()
    }
    fn parent(&self, _tid: Tid) -> Option<NodeId> {
        None
    }
}

/// Lifecycle phase of a transaction known to this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxPhase {
    /// Running normally.
    Running,
    /// Voted yes, awaiting the coordinator's decision (in doubt).
    Prepared,
    /// Committed (top-level, or subtransaction merged into its parent).
    Committed,
    /// Aborted.
    Aborted,
}

/// Incoming vote bookkeeping for an in-progress distributed commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Vote {
    Yes,
    ReadOnly,
    No,
}

struct TxInfo {
    parent: Tid,
    phase: TxPhase,
    /// Local servers enlisted, keyed by server name.
    participants: HashMap<String, Arc<dyn Participant>>,
    /// This tid plus every committed-subtransaction descendant.
    merged: Vec<Tid>,
    /// Votes received from commit-tree children (during phase 1).
    votes: HashMap<NodeId, Vote>,
    /// Phase-2 acknowledgements received.
    acks: HashSet<NodeId>,
    /// Children that voted yes (need phase 2).
    yes_children: Vec<NodeId>,
    /// Parent node when this transaction's work here is remote-initiated.
    remote_parent: Option<NodeId>,
}

impl TxInfo {
    fn new(parent: Tid, tid: Tid) -> Self {
        Self {
            parent,
            phase: TxPhase::Running,
            participants: HashMap::new(),
            merged: vec![tid],
            votes: HashMap::new(),
            acks: HashSet::new(),
            yes_children: Vec::new(),
            remote_parent: None,
        }
    }
}

/// Two-phase-commit timing knobs.
///
/// Defaults match the paper-era behaviour; fault-injection harnesses
/// shorten them so "coordinator presumed dead" scenarios resolve in
/// milliseconds instead of seconds.
#[derive(Debug, Clone, Copy)]
pub struct TmTimeouts {
    /// Retransmission interval for unacknowledged commit datagrams.
    pub retransmit: Duration,
    /// Total time to wait for votes before presuming failure and aborting.
    pub vote_deadline: Duration,
    /// Total time to chase phase-2 acknowledgements.
    pub ack_deadline: Duration,
}

impl Default for TmTimeouts {
    fn default() -> Self {
        Self {
            retransmit: Duration::from_millis(100),
            vote_deadline: Duration::from_secs(5),
            ack_deadline: Duration::from_secs(5),
        }
    }
}

/// Which commit path the Transaction Manager takes at top-level commit.
///
/// The protocol *decisions* are identical under `Seed` and `Fast` — the
/// seed code already skips the commit force for read-only transactions
/// and never sends datagrams for a sole-writer commit. `Fast` makes
/// those paths explicit: the single-participant 1PC branch gets its own
/// crash points, counter and trace event, and read-only voter drop-out
/// is confirmed against the lock manager's S-only classification and
/// counted. `Full` is the pessimistic measurement baseline that
/// suppresses both optimizations, so the `fastpath` bench can show what
/// they save.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitPathPolicy {
    /// The seed commit path, byte for byte (the default).
    #[default]
    Seed,
    /// Labeled fast paths: 1PC branch (crash points
    /// `tm.1pc.before-force`/`after-force`, `tm.commit.1pc` counter) and
    /// instrumented read-only drop-out (`tm.prepare.readonly` counter).
    /// Observable force/datagram counts equal `Seed` by construction.
    Fast,
    /// Full-2PC baseline: participants are prepared with
    /// [`CommitMsg::PrepareFull`] (forced prepare + phase 2 even when
    /// read-only) and the coordinator always forces a commit record,
    /// paying a forced self-prepare first when it wrote locally.
    Full,
}

/// How the Transaction Manager treats participants that belong to a
/// declared replica set (a *quorum group*, registered with
/// [`TransactionManager::set_quorum_groups`]).
///
/// Both switches default off, which preserves the seed protocol byte for
/// byte: every child must vote and every yes-voter must acknowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicationPolicy {
    /// Phase 1: a missing vote from a suspected-unreachable group member
    /// is waived once a majority of its group is durably prepared (the
    /// group votes yes as one logical participant).
    pub majority_vote: bool,
    /// Phase 2: stop chasing acknowledgements from suspected-unreachable
    /// group members (a surviving majority already has the decision; the
    /// dead member learns it from recovery or cooperative termination).
    pub abandon_dead_acks: bool,
}

impl ReplicationPolicy {
    /// Both replication integrations enabled.
    pub fn enabled() -> Self {
        Self { majority_vote: true, abandon_dead_acks: true }
    }
}

/// Crash-points the Transaction Manager fires (see `tabs_kernel::crash`):
/// one per two-phase-commit state transition, plus the two sides of the
/// single-participant 1PC commit force.
pub const CRASH_POINTS: &[&str] = &[
    "tm.prepare.sent",
    "tm.vote.logged",
    "tm.commit.logged",
    "tm.ack.sent",
    "tm.1pc.before-force",
    "tm.1pc.after-force",
];

/// The Transaction Manager of one node.
pub struct TransactionManager {
    node: NodeId,
    incarnation: u32,
    seq: AtomicU64,
    rm: Arc<RecoveryManager>,
    transport: Mutex<Arc<dyn CommitTransport>>,
    inner: Mutex<HashMap<Tid, TxInfo>>,
    cond: Condvar,
    /// Durable outcomes remembered for coordinator inquiries (loaded from
    /// crash recovery, appended to at runtime).
    outcomes: Mutex<HashMap<Tid, bool>>,
    perf: Arc<PerfCounters>,
    trace: Mutex<Option<Arc<TraceCollector>>>,
    crash: CrashHookSlot,
    timeouts: Mutex<TmTimeouts>,
    /// Cooperative termination: on coordinator suspicion, in-doubt
    /// participants also query fellow participants for the outcome.
    cooperative: AtomicBool,
    /// Whether [`Self::load_recovery`] has replayed the durable log.
    /// Until then this node cannot *prove* an unknown transaction was
    /// never committed, so presumed-abort replies are withheld.
    recovered: AtomicBool,
    /// Tids with a live resolver thread (avoids duplicate resolvers when
    /// the watchdog and a suspicion callback race).
    resolving: Mutex<HashSet<Tid>>,
    /// Coroutine cache for inbound two-phase-commit datagrams that may
    /// block (log forces, lock waits): reuses parked workers instead of
    /// spawning a thread per `Prepare`/`Commit`/`Abort`.
    workers: Arc<WorkerPool>,
    /// Commit-path selection: seed, labeled fast paths, or the
    /// pessimistic full-2PC baseline.
    commit_paths: Mutex<CommitPathPolicy>,
    /// `tm.commit.1pc`: single-participant one-phase commits taken (wired
    /// only under the fast policy; `None` leaves the seed path untouched).
    one_pc_commits: Mutex<Option<Counter>>,
    /// `tm.prepare.readonly`: read-only votes this participant sent.
    readonly_votes: Mutex<Option<Counter>>,
    /// Replica-set integration switches (both off = seed protocol).
    replication: Mutex<ReplicationPolicy>,
    /// Declared replica sets (each a node-level group that votes as one
    /// logical participant under [`ReplicationPolicy::majority_vote`]).
    quorum_groups: Mutex<Vec<Vec<NodeId>>>,
    /// `tm.rep.quorum_commits`: commits that waived a dead group member.
    quorum_commits: Mutex<Option<Counter>>,
    /// `tm.rep.acks_abandoned`: phase-2 acks abandoned to dead members.
    acks_abandoned: Mutex<Option<Counter>>,
    /// End-to-end deadlines registered per top-level transaction; the
    /// coordinator refuses to launch a commit it cannot finish in budget.
    deadlines: Mutex<HashMap<Tid, Deadline>>,
    /// `deadline.expired`: commits refused (aborted) for expired budget.
    deadline_expired: Mutex<Option<Counter>>,
}

impl std::fmt::Debug for TransactionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionManager")
            .field("node", &self.node)
            .field("incarnation", &self.incarnation)
            .finish()
    }
}

impl TransactionManager {
    /// Creates the Transaction Manager. `incarnation` must increase across
    /// node restarts so identifiers stay globally unique.
    pub fn new(
        node: NodeId,
        incarnation: u32,
        rm: Arc<RecoveryManager>,
        perf: Arc<PerfCounters>,
    ) -> Arc<Self> {
        Arc::new(Self {
            node,
            incarnation,
            seq: AtomicU64::new(1),
            rm,
            transport: Mutex::new(Arc::new(NullTransport)),
            inner: Mutex::new(HashMap::new()),
            cond: Condvar::new(),
            outcomes: Mutex::new(HashMap::new()),
            perf,
            trace: Mutex::new(None),
            crash: CrashHookSlot::new(None),
            timeouts: Mutex::new(TmTimeouts::default()),
            cooperative: AtomicBool::new(false),
            recovered: AtomicBool::new(false),
            resolving: Mutex::new(HashSet::new()),
            workers: WorkerPool::new(&format!("tm-{}", node.0)),
            commit_paths: Mutex::new(CommitPathPolicy::Seed),
            one_pc_commits: Mutex::new(None),
            readonly_votes: Mutex::new(None),
            replication: Mutex::new(ReplicationPolicy::default()),
            quorum_groups: Mutex::new(Vec::new()),
            quorum_commits: Mutex::new(None),
            acks_abandoned: Mutex::new(None),
            deadlines: Mutex::new(HashMap::new()),
            deadline_expired: Mutex::new(None),
        })
    }

    /// Selects the replica-set policy. [`ReplicationPolicy::default`]
    /// (both switches off) restores the seed protocol.
    pub fn set_replication(&self, policy: ReplicationPolicy) {
        *self.replication.lock() = policy;
    }

    fn replication(&self) -> ReplicationPolicy {
        *self.replication.lock()
    }

    /// Registers the declared replica sets. Each group lists the nodes of
    /// one replica set (leader plus followers); under
    /// [`ReplicationPolicy::majority_vote`] the coordinator treats a group
    /// as a single logical participant that has voted yes once a majority
    /// of its members is durably prepared.
    pub fn set_quorum_groups(&self, groups: Vec<Vec<NodeId>>) {
        *self.quorum_groups.lock() = groups;
    }

    /// Appends one replica set to the declared quorum groups, so a node
    /// hosting several replicated services can register each set without
    /// stomping the others. Re-registering a group with the same
    /// membership (in any order — a leader handoff reorders the set
    /// without changing it) is a no-op.
    pub fn add_quorum_group(&self, group: Vec<NodeId>) {
        let same_members =
            |a: &[NodeId], b: &[NodeId]| a.len() == b.len() && a.iter().all(|m| b.contains(m));
        let mut groups = self.quorum_groups.lock();
        if !groups.iter().any(|g| same_members(g, &group)) {
            groups.push(group);
        }
    }

    /// The currently registered quorum groups (a copy).
    pub fn quorum_group_list(&self) -> Vec<Vec<NodeId>> {
        self.quorum_groups.lock().clone()
    }

    /// Wires the replication counters (`tm.rep.quorum_commits` and
    /// `tm.rep.acks_abandoned`).
    pub fn set_replication_metrics(&self, quorum_commits: Counter, acks_abandoned: Counter) {
        *self.quorum_commits.lock() = Some(quorum_commits);
        *self.acks_abandoned.lock() = Some(acks_abandoned);
    }

    /// Wires the `deadline.expired` counter (commits refused for budget).
    pub fn set_deadline_metrics(&self, expired: Counter) {
        *self.deadline_expired.lock() = Some(expired);
    }

    /// Registers the end-to-end deadline of `tid`. The coordinator will
    /// abort rather than launch a commit it cannot finish in budget; an
    /// unregistered transaction commits on the seed path unchanged.
    pub fn set_deadline(&self, tid: Tid, deadline: Deadline) {
        self.deadlines.lock().insert(tid, deadline);
    }

    /// The registered deadline of `tid`, if any.
    pub fn deadline(&self, tid: Tid) -> Option<Deadline> {
        self.deadlines.lock().get(&tid).copied()
    }

    /// Whether a missing vote from `child` can be waived: some registered
    /// group contains it and a majority of that group's members is
    /// already durably prepared here (voted yes/read-only, or is this
    /// coordinator itself, whose own commit record is the decision).
    ///
    /// This is the group-membership half of the waiver only. The caller
    /// must additionally confirm the child's *footprint* is confined to
    /// replica-scoped work ([`CommitTransport::replica_only`]): a group
    /// member that also did unreplicated work for the transaction has
    /// state no surviving replica holds, so its silence must abort.
    fn quorum_waivable(
        &self,
        child: NodeId,
        votes: &HashMap<NodeId, Vote>,
        groups: &[Vec<NodeId>],
    ) -> bool {
        groups.iter().any(|g| {
            g.contains(&child) && {
                let durable = g
                    .iter()
                    .filter(|m| {
                        **m == self.node
                            || matches!(votes.get(m), Some(Vote::Yes) | Some(Vote::ReadOnly))
                    })
                    .count();
                2 * durable > g.len()
            }
        })
    }

    /// Whether `node` belongs to any registered replica set.
    fn in_quorum_group(&self, node: NodeId) -> bool {
        self.quorum_groups.lock().iter().any(|g| g.contains(&node))
    }

    /// Selects the commit-path policy. [`CommitPathPolicy::Seed`] (the
    /// default) restores the historical path byte for byte.
    pub fn set_commit_paths(&self, policy: CommitPathPolicy) {
        *self.commit_paths.lock() = policy;
    }

    /// Current commit-path policy.
    pub fn commit_paths(&self) -> CommitPathPolicy {
        *self.commit_paths.lock()
    }

    /// Wires the fast-path counters (`tm.commit.1pc` and
    /// `tm.prepare.readonly`); they tick only on the fast-path branches.
    pub fn set_fastpath_metrics(&self, one_pc: Counter, read_only: Counter) {
        *self.one_pc_commits.lock() = Some(one_pc);
        *self.readonly_votes.lock() = Some(read_only);
    }

    /// Enables the cooperative termination protocol: in-doubt resolvers
    /// broadcast [`CommitMsg::OutcomeQuery`] to fellow participants in
    /// addition to inquiring at the coordinator, and
    /// [`Self::peer_suspected`] reacts to failure-detector suspicions.
    pub fn set_cooperative_termination(&self, on: bool) {
        self.cooperative.store(on, Ordering::Relaxed);
    }

    /// Replaces the two-phase-commit timing knobs.
    pub fn set_timeouts(&self, t: TmTimeouts) {
        *self.timeouts.lock() = t;
    }

    fn timeouts(&self) -> TmTimeouts {
        *self.timeouts.lock()
    }

    /// Installs crash-point hooks fired at the [`CRASH_POINTS`]
    /// two-phase-commit state transitions.
    pub fn set_crash_hooks(&self, hooks: Arc<dyn CrashHooks>) {
        *self.crash.lock() = Some(hooks);
    }

    /// Installs the Communication Manager's transport.
    pub fn set_transport(&self, t: Arc<dyn CommitTransport>) {
        *self.transport.lock() = t;
    }

    fn transport(&self) -> Arc<dyn CommitTransport> {
        Arc::clone(&self.transport.lock())
    }

    /// Attaches a trace collector: transaction begins and every
    /// two-phase-commit datagram this manager sends or receives (including
    /// retransmissions) are recorded against the transaction's identifier.
    pub fn set_trace(&self, trace: Arc<TraceCollector>) {
        *self.trace.lock() = Some(trace);
    }

    fn emit(&self, tid: Tid, event: TraceEvent) {
        if let Some(t) = self.trace.lock().as_ref() {
            t.record(tid, event);
        }
    }

    fn send_traced(&self, transport: &Arc<dyn CommitTransport>, to: NodeId, msg: CommitMsg) {
        if let Some((tid, event)) = commit_msg_send_event(to, &msg) {
            self.emit(tid, event);
        }
        transport.send(to, msg);
    }

    /// This node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn count_call(&self) {
        // Begin/End/Abort are message exchanges with the TM process: one
        // request and one reply, both small (§5 message accounting).
        self.perf.record(PrimitiveOp::SmallContiguousMessage);
        self.perf.record(PrimitiveOp::SmallContiguousMessage);
    }

    /// `BeginTransaction` (Table 3-2): creates a subtransaction of
    /// `parent`, or a new top-level transaction when `parent` is
    /// [`Tid::NULL`].
    pub fn begin(&self, parent: Tid) -> Result<Tid, TmError> {
        self.count_call();
        if !parent.is_null() {
            let inner = self.inner.lock();
            match inner.get(&parent) {
                Some(info) if info.phase == TxPhase::Running => {}
                Some(_) => return Err(TmError::Aborted(parent)),
                None => return Err(TmError::Unknown(parent)),
            }
        }
        let tid = Tid {
            node: self.node,
            incarnation: self.incarnation,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        self.rm.log_begin(tid, parent);
        self.inner.lock().insert(tid, TxInfo::new(parent, tid));
        self.emit(tid, TraceEvent::TxnBegin { parent });
        Ok(tid)
    }

    /// Records that `server` performed its first operation for `tid`
    /// (creating the registry entry for remote-initiated transactions).
    pub fn enlist(&self, tid: Tid, server: &str, p: Arc<dyn Participant>) {
        // The server's one-time notification message.
        self.perf.record(PrimitiveOp::SmallContiguousMessage);
        let mut inner = self.inner.lock();
        let info = inner.entry(tid).or_insert_with(|| TxInfo::new(Tid::NULL, tid));
        info.participants.entry(server.to_string()).or_insert(p);
    }

    /// Current phase of `tid`, if known.
    pub fn phase(&self, tid: Tid) -> Option<TxPhase> {
        self.inner.lock().get(&tid).map(|i| i.phase)
    }

    /// Whether `tid` has been aborted (drives the `TransactionIsAborted`
    /// notification of Table 3-2).
    pub fn is_aborted(&self, tid: Tid) -> bool {
        match self.phase(tid) {
            Some(phase) => phase == TxPhase::Aborted,
            // No live entry: consult the durable outcomes (a resolved and
            // forgotten transaction); unknown tids are not "aborted".
            None => self.outcomes.lock().get(&tid) == Some(&false),
        }
    }

    /// States of live transactions, for Recovery Manager checkpoints.
    pub fn active_states(&self) -> Vec<(Tid, TxState)> {
        self.inner
            .lock()
            .iter()
            .filter_map(|(tid, info)| match info.phase {
                TxPhase::Running => Some((*tid, TxState::Active)),
                TxPhase::Prepared => Some((*tid, TxState::Prepared)),
                _ => None,
            })
            .collect()
    }

    /// Number of live (running or prepared) transactions in which the
    /// named server is enlisted as a participant.
    ///
    /// Shard migration's drain step polls this on the source node: once
    /// no in-flight transaction still involves the migrating shard's
    /// server — the server's identity (its enlistment name) survives the
    /// ownership change — its data is quiescent and safe to copy (new
    /// writes are already refused by the shard fence).
    pub fn active_enlistments(&self, server: &str) -> usize {
        self.inner
            .lock()
            .values()
            .filter(|info| matches!(info.phase, TxPhase::Running | TxPhase::Prepared))
            .filter(|info| info.participants.contains_key(server))
            .count()
    }

    /// `EndTransaction` (Table 3-2): attempts to commit. Returns `true` on
    /// commit, `false` if the transaction was (or had to be) aborted.
    pub fn end(&self, tid: Tid) -> Result<bool, TmError> {
        self.count_call();
        let (parent, phase) = {
            let inner = self.inner.lock();
            let info = inner.get(&tid).ok_or(TmError::Unknown(tid))?;
            (info.parent, info.phase)
        };
        match phase {
            TxPhase::Running => {}
            TxPhase::Aborted => {
                // Aborted underneath the application (deadlock victim,
                // suspicion callback). Children may have enlisted after
                // the abort ran — tell them again.
                self.renotify_abort(tid);
                return Ok(false);
            }
            _ => return Ok(true),
        }
        if parent.is_null() {
            self.commit_top_level(tid)
        } else {
            self.commit_subtransaction(tid, parent)
        }
    }

    /// `AbortTransaction` (Table 3-2): forces `tid` (and its unresolved
    /// subtransactions) to abort.
    pub fn abort(&self, tid: Tid) -> Result<(), TmError> {
        self.count_call();
        self.abort_internal(tid)
    }

    fn abort_internal(&self, tid: Tid) -> Result<(), TmError> {
        let (merged, participants) = {
            let mut inner = self.inner.lock();
            let info = match inner.get_mut(&tid) {
                Some(i) => i,
                None => return Err(TmError::Unknown(tid)),
            };
            if info.phase == TxPhase::Aborted {
                // Already aborted — but not necessarily *fully* notified:
                // an asynchronous abort (suspicion callback, deadlock
                // victim) can run while the transaction's calls are still
                // fanning out, and a child reached after that abort read
                // the (then-empty) child set never hears the decision. A
                // repeated abort re-chases whatever children exist now;
                // the phase was set before any notification, so a child
                // registered after this check is covered by the abort
                // that observed it.
                drop(inner);
                self.renotify_abort(tid);
                return Ok(());
            }
            info.phase = TxPhase::Aborted;
            (info.merged.clone(), info.participants.clone())
        };
        // Undo newest-first across the merged set.
        for t in merged.iter().rev() {
            self.rm.abort(*t).map_err(|e| TmError::Rm(e.to_string()))?;
        }
        for p in participants.values() {
            for t in &merged {
                p.finish(*t, false);
            }
        }
        self.outcomes.lock().insert(tid, false);
        self.deadlines.lock().remove(&tid);
        // Tell remote children (of every merged tid) to abort; chase acks
        // in the background so the caller is not delayed.
        let transport = self.transport();
        let mut children: HashSet<NodeId> = HashSet::new();
        for t in &merged {
            children.extend(transport.children(*t));
        }
        if !children.is_empty() {
            self.chase_acks_background(tid, children, CommitMsg::Abort { tid });
        }
        self.cond.notify_all();
        Ok(())
    }

    /// Re-delivers an already-decided abort to the transaction's *current*
    /// participants and commit-tree children. Undo is not re-applied (the
    /// first abort did that); this only sweeps up enlistments that raced
    /// the first abort — a server reached after the abort read an empty
    /// child set would otherwise hold its locks forever.
    fn renotify_abort(&self, tid: Tid) {
        let (merged, participants) = {
            let inner = self.inner.lock();
            match inner.get(&tid) {
                Some(i) => (i.merged.clone(), i.participants.clone()),
                None => return,
            }
        };
        for p in participants.values() {
            for t in &merged {
                p.finish(*t, false);
            }
        }
        let transport = self.transport();
        let mut children: HashSet<NodeId> = HashSet::new();
        for t in &merged {
            children.extend(transport.children(*t));
        }
        if !children.is_empty() {
            self.chase_acks_background(tid, children, CommitMsg::Abort { tid });
        }
    }

    /// Commit of a subtransaction: transfer locks/enlistments to the
    /// parent; the child's effects become permanent only with the top
    /// level (§2.1.3).
    fn commit_subtransaction(&self, tid: Tid, parent: Tid) -> Result<bool, TmError> {
        let mut inner = self.inner.lock();
        // The parent must still be running.
        match inner.get(&parent) {
            Some(p) if p.phase == TxPhase::Running => {}
            _ => return Err(TmError::Unknown(parent)),
        }
        let info = inner.get_mut(&tid).ok_or(TmError::Unknown(tid))?;
        if info.phase != TxPhase::Running {
            return Ok(info.phase == TxPhase::Committed);
        }
        info.phase = TxPhase::Committed;
        let child_merged = info.merged.clone();
        let child_parts: Vec<(String, Arc<dyn Participant>)> =
            info.participants.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        for (_, p) in &child_parts {
            for t in &child_merged {
                p.commit_subtransaction(*t, parent);
            }
        }
        let pinfo = inner.get_mut(&parent).expect("checked above");
        pinfo.merged.extend(child_merged);
        for (name, p) in child_parts {
            pinfo.participants.entry(name).or_insert(p);
        }
        Ok(true)
    }

    /// Top-level commit: phase 1 over local participants and the commit
    /// tree, then the forced commit record, then phase 2.
    fn commit_top_level(&self, tid: Tid) -> Result<bool, TmError> {
        // Deadline gate: a prepare round launched past the budget cannot
        // finish in time, and worse, it pins every participant's locks
        // through a doomed vote collection. Abort up front instead — the
        // participants' undo and lock release run the normal abort path,
        // so nothing leaks. No registered deadline ⇒ seed path untouched.
        if let Some(d) = self.deadline(tid) {
            if d.is_expired() {
                if let Some(c) = self.deadline_expired.lock().as_ref() {
                    c.inc();
                }
                self.deadlines.lock().remove(&tid);
                self.abort_internal(tid)?;
                return Ok(false);
            }
        }
        let (merged, participants) = {
            let inner = self.inner.lock();
            let info = inner.get(&tid).ok_or(TmError::Unknown(tid))?;
            (info.merged.clone(), info.participants.clone())
        };

        // Phase 1 (local): every enlisted server prepares each merged tid.
        let policy = self.commit_paths();
        let mut updates = false;
        for p in participants.values() {
            for t in &merged {
                match p.prepare(*t) {
                    Ok(u) => updates |= u,
                    Err(_) => {
                        self.abort_internal(tid)?;
                        return Ok(false);
                    }
                }
            }
        }
        let local_updates = updates;

        // Phase 1 (remote): prepare the commit-tree children.
        let transport = self.transport();
        let mut children: HashSet<NodeId> = HashSet::new();
        for t in &merged {
            children.extend(transport.children(*t));
        }
        let children: Vec<NodeId> = children.into_iter().collect();
        let mut remote_yes: Vec<NodeId> = Vec::new();
        if !children.is_empty() {
            match self.collect_votes(tid, &merged, &children, policy == CommitPathPolicy::Full) {
                Ok((yes, any_updates)) => {
                    updates |= any_updates;
                    remote_yes = yes;
                }
                Err(_) => {
                    self.abort_internal(tid)?;
                    return Ok(false);
                }
            }
        }

        // Decision. Read-only transactions need no commit record or force
        // (the cheap path of Table 5-3, "1 Node, Read Only"). The commit
        // force below goes through the RM's batched commit path: with
        // group commit enabled, concurrent committers share one device
        // force.
        if policy == CommitPathPolicy::Fast && updates && children.is_empty() {
            // Single-participant 1PC: this coordinator is the sole writer
            // (no commit-tree children registered), so a prepare phase
            // would protect nothing — the commit record alone is the
            // atomic event. One log force, zero 2PC datagrams.
            crash_point!(&self.crash, "tm.1pc.before-force");
            self.rm.log_commit(tid).map_err(|e| TmError::Rm(e.to_string()))?;
            crash_point!(&self.crash, "tm.1pc.after-force");
            if let Some(c) = self.one_pc_commits.lock().as_ref() {
                c.inc();
            }
            self.emit(tid, TraceEvent::CommitPath { one_phase: true, read_only: false });
        } else if updates || policy == CommitPathPolicy::Full {
            if policy == CommitPathPolicy::Full && local_updates {
                // Pessimistic baseline: the coordinator's own writes pay
                // the forced participant prepare record that the 1PC path
                // proves unnecessary.
                self.rm.log_prepare(tid, self.node).map_err(|e| TmError::Rm(e.to_string()))?;
            }
            self.rm.log_commit(tid).map_err(|e| TmError::Rm(e.to_string()))?;
            crash_point!(&self.crash, "tm.commit.logged");
        }
        {
            let mut inner = self.inner.lock();
            if let Some(info) = inner.get_mut(&tid) {
                info.phase = TxPhase::Committed;
                info.yes_children = remote_yes.clone();
            }
        }
        self.outcomes.lock().insert(tid, true);

        // Phase 2: local finish + remote commit to yes-voters only.
        for p in participants.values() {
            for t in &merged {
                p.finish(*t, true);
            }
        }
        if !remote_yes.is_empty() {
            self.chase_acks_blocking(
                tid,
                remote_yes.into_iter().collect(),
                CommitMsg::Commit { tid },
            );
        }
        self.deadlines.lock().remove(&tid);
        Ok(true)
    }

    /// Sends Prepare (or PrepareFull under the full-2PC baseline) to
    /// every child and waits for all votes, with retransmission. Returns
    /// (yes-voters, any-updates).
    ///
    /// Under [`ReplicationPolicy::majority_vote`], a child that belongs
    /// to a registered quorum group and is suspected unreachable has its
    /// missing vote waived once a majority of its group is durably
    /// prepared: the group voted yes as one logical participant, so the
    /// commit proceeds on the surviving members. A live `No` still aborts
    /// — the waiver only stands in for silence, never for refusal.
    fn collect_votes(
        &self,
        tid: Tid,
        merged: &[Tid],
        children: &[NodeId],
        full: bool,
    ) -> Result<(Vec<NodeId>, bool), TmError> {
        let transport = self.transport();
        let timeouts = self.timeouts();
        let deadline = Instant::now() + timeouts.vote_deadline;
        let groups: Vec<Vec<NodeId>> = if self.replication().majority_vote {
            self.quorum_groups.lock().clone()
        } else {
            Vec::new()
        };
        let msg = if full {
            CommitMsg::PrepareFull { tid, merged: merged.to_vec() }
        } else {
            CommitMsg::Prepare { tid, merged: merged.to_vec() }
        };
        for &c in children {
            self.send_traced(&transport, c, msg.clone());
        }
        crash_point!(&self.crash, "tm.prepare.sent");
        let mut inner = self.inner.lock();
        loop {
            let info = inner.get(&tid).ok_or(TmError::Unknown(tid))?;
            if info.phase == TxPhase::Aborted {
                // Aborted underneath us (deadlock victim, or a suspicion
                // callback killed the transaction); stop waiting.
                return Err(TmError::VoteTimeout(tid));
            }
            if info.votes.values().any(|v| *v == Vote::No) {
                return Err(TmError::VoteTimeout(tid)); // treated as abort
            }
            let missing: Vec<NodeId> =
                children.iter().copied().filter(|c| !info.votes.contains_key(c)).collect();
            if missing.is_empty() {
                let yes: Vec<NodeId> = children
                    .iter()
                    .copied()
                    .filter(|c| info.votes.get(c) == Some(&Vote::Yes))
                    .collect();
                let any_updates = !yes.is_empty();
                return Ok((yes, any_updates));
            }
            if !groups.is_empty() {
                let votes = info.votes.clone();
                if missing.iter().all(|&c| self.quorum_waivable(c, &votes, &groups)) {
                    // Unlocked: reachability and footprint queries go to
                    // the Communication Manager. The waiver needs the
                    // missing member dead AND its work for every merged
                    // tid confined to replica-scoped servers — a member
                    // with unreplicated writes has state no surviving
                    // replica holds, so it must vote for itself.
                    let all_dead = parking_lot::MutexGuard::unlocked(&mut inner, || {
                        missing.iter().all(|&c| {
                            transport.unreachable(c)
                                && merged.iter().all(|t| transport.replica_only(*t, c))
                        })
                    });
                    if all_dead {
                        let info = inner.get(&tid).ok_or(TmError::Unknown(tid))?;
                        if info.phase == TxPhase::Aborted {
                            return Err(TmError::VoteTimeout(tid));
                        }
                        // Votes may have raced in while the lock was
                        // released: a late No still aborts (the waiver
                        // stands in for silence, never for refusal), and
                        // a late Yes/ReadOnly shrinks the missing set —
                        // re-evaluate rather than waive against a stale
                        // snapshot.
                        if info.votes.values().any(|v| *v == Vote::No) {
                            return Err(TmError::VoteTimeout(tid));
                        }
                        let still_missing: Vec<NodeId> = children
                            .iter()
                            .copied()
                            .filter(|c| !info.votes.contains_key(c))
                            .collect();
                        if still_missing != missing {
                            continue;
                        }
                        let yes: Vec<NodeId> = children
                            .iter()
                            .copied()
                            .filter(|c| info.votes.get(c) == Some(&Vote::Yes))
                            .collect();
                        if let Some(c) = self.quorum_commits.lock().as_ref() {
                            c.inc();
                        }
                        self.emit(tid, TraceEvent::ReplicaQuorum { waived: missing.len() as u32 });
                        // Force a commit record unconditionally: a waived
                        // member may hold prepared writes, and its in-doubt
                        // resolution must find a durable positive answer.
                        return Ok((yes, true));
                    }
                }
            }
            let timed_out =
                self.cond.wait_until(&mut inner, Instant::now() + timeouts.retransmit).timed_out();
            if Instant::now() >= deadline {
                return Err(TmError::VoteTimeout(tid));
            }
            if timed_out {
                // Retransmit to children that have not voted — unless one
                // of them is suspected unreachable *and* no quorum group
                // can cover for it, in which case waiting out the full
                // vote deadline is pointless: presume failure now and
                // abort (the durable abort record lets the child learn
                // the outcome whenever it asks). A suspected member whose
                // group majority is durable is not fatal — the waiver
                // above commits without it.
                let info = inner.get(&tid).ok_or(TmError::Unknown(tid))?;
                let missing: Vec<NodeId> =
                    children.iter().copied().filter(|c| !info.votes.contains_key(c)).collect();
                let votes = info.votes.clone();
                let failed = parking_lot::MutexGuard::unlocked(&mut inner, || {
                    if missing.iter().any(|&c| {
                        transport.unreachable(c)
                            && !(self.quorum_waivable(c, &votes, &groups)
                                && merged.iter().all(|t| transport.replica_only(*t, c)))
                    }) {
                        return true;
                    }
                    for c in missing {
                        self.send_traced(&transport, c, msg.clone());
                    }
                    false
                });
                if failed {
                    return Err(TmError::VoteTimeout(tid));
                }
            }
        }
    }

    /// Sends `msg` to `targets` and waits until each acknowledged,
    /// retransmitting. Blocks the committing caller (the paper's measured
    /// protocol; the "Improved TABS Architecture" projection moves this off
    /// the critical path).
    fn chase_acks_blocking(&self, tid: Tid, targets: HashSet<NodeId>, msg: CommitMsg) {
        let transport = self.transport();
        let timeouts = self.timeouts();
        for &c in &targets {
            self.send_traced(&transport, c, msg.clone());
        }
        let deadline = Instant::now() + timeouts.ack_deadline;
        // Quorum-group members that died mid-commit are abandoned instead
        // of chased to the ack deadline: their surviving replicas hold the
        // data, and the dead member resolves the outcome from the durable
        // decision record when it rejoins.
        let abandon = self.replication().abandon_dead_acks;
        let mut abandoned: HashSet<NodeId> = HashSet::new();
        let mut inner = self.inner.lock();
        loop {
            let done = match inner.get(&tid) {
                Some(info) => {
                    targets.iter().all(|c| info.acks.contains(c) || abandoned.contains(c))
                }
                None => true,
            };
            if done || Instant::now() >= deadline {
                return;
            }
            let timed_out =
                self.cond.wait_until(&mut inner, Instant::now() + timeouts.retransmit).timed_out();
            if timed_out {
                let missing: Vec<NodeId> = match inner.get(&tid) {
                    Some(info) => targets
                        .iter()
                        .copied()
                        .filter(|c| !info.acks.contains(c) && !abandoned.contains(c))
                        .collect(),
                    None => Vec::new(),
                };
                let newly_abandoned =
                    parking_lot::MutexGuard::unlocked(&mut inner, || -> Vec<NodeId> {
                        let mut dead = Vec::new();
                        for c in missing {
                            if abandon && self.in_quorum_group(c) && transport.unreachable(c) {
                                dead.push(c);
                            } else {
                                self.send_traced(&transport, c, msg.clone());
                            }
                        }
                        dead
                    });
                for c in newly_abandoned {
                    abandoned.insert(c);
                    if let Some(counter) = self.acks_abandoned.lock().as_ref() {
                        counter.inc();
                    }
                }
            }
        }
    }

    /// Fire-and-retransmit without blocking the caller: the receiving
    /// side is idempotent and acknowledgements are absorbed by `handle`.
    fn chase_acks_background(&self, _tid: Tid, targets: HashSet<NodeId>, msg: CommitMsg) {
        let transport = self.transport();
        let trace = self.trace.lock().clone();
        let timeouts = self.timeouts();
        std::thread::spawn(move || {
            let deadline = Instant::now() + timeouts.ack_deadline;
            while Instant::now() < deadline {
                for &c in &targets {
                    if let Some(t) = trace.as_ref() {
                        if let Some((tid, event)) = commit_msg_send_event(c, &msg) {
                            t.record(tid, event);
                        }
                    }
                    transport.send(c, msg.clone());
                }
                std::thread::sleep(timeouts.retransmit);
            }
        });
    }

    /// Entry point for incoming two-phase-commit datagrams, called by the
    /// Communication Manager's datagram loop.
    pub fn handle(self: &Arc<Self>, from: NodeId, msg: CommitMsg) {
        if let Some((tid, event)) = commit_msg_recv_event(from, &msg) {
            self.emit(tid, event);
        }
        match msg {
            CommitMsg::Prepare { tid, merged } => {
                let tm = Arc::clone(self);
                self.workers.execute(move || tm.handle_prepare(from, tid, merged, false));
            }
            CommitMsg::PrepareFull { tid, merged } => {
                let tm = Arc::clone(self);
                self.workers.execute(move || tm.handle_prepare(from, tid, merged, true));
            }
            CommitMsg::VoteYes { tid, from } => self.record_vote(tid, from, Vote::Yes),
            CommitMsg::VoteReadOnly { tid, from } => self.record_vote(tid, from, Vote::ReadOnly),
            CommitMsg::VoteNo { tid, from } => self.record_vote(tid, from, Vote::No),
            CommitMsg::Commit { tid } => {
                let tm = Arc::clone(self);
                self.workers.execute(move || tm.handle_commit(from, tid));
            }
            CommitMsg::CommitAck { tid, from } | CommitMsg::AbortAck { tid, from } => {
                let mut inner = self.inner.lock();
                if let Some(info) = inner.get_mut(&tid) {
                    info.acks.insert(from);
                }
                self.cond.notify_all();
            }
            CommitMsg::Abort { tid } => {
                let tm = Arc::clone(self);
                self.workers.execute(move || tm.handle_abort(from, tid));
            }
            CommitMsg::Inquire { tid, from } => {
                let outcome = self.outcomes.lock().get(&tid).copied();
                let reply = match outcome {
                    Some(true) => Some(CommitMsg::Commit { tid }),
                    Some(false) => Some(CommitMsg::Abort { tid }),
                    None => {
                        // Presumed abort applies only when this node
                        // *provably* never logged a commit for `tid`. If
                        // the transaction is still in flight here (votes
                        // being collected, or we are in doubt ourselves)
                        // the decision is pending — stay silent and let
                        // the inquirer retry, rather than answering Abort
                        // moments before the commit record is forced.
                        // Likewise before log replay: a rebooting node
                        // does not yet know what it committed.
                        let pending = matches!(
                            self.inner.lock().get(&tid).map(|i| i.phase),
                            Some(TxPhase::Running) | Some(TxPhase::Prepared)
                        );
                        if pending || !self.recovered.load(Ordering::Acquire) {
                            None
                        } else {
                            Some(CommitMsg::Abort { tid })
                        }
                    }
                };
                if let Some(reply) = reply {
                    self.send_traced(&self.transport(), from, reply);
                }
            }
            CommitMsg::OutcomeQuery { tid, from } => {
                // A peer may answer only from durable positive knowledge;
                // a peer that does not know the outcome stays silent —
                // presuming abort is the coordinator's prerogative alone.
                if let Some(committed) = self.outcomes.lock().get(&tid).copied() {
                    self.send_traced(
                        &self.transport(),
                        from,
                        CommitMsg::OutcomeAnswer { tid, from: self.node, committed },
                    );
                }
            }
            CommitMsg::OutcomeAnswer { tid, committed, .. } => {
                let tm = Arc::clone(self);
                self.workers.execute(move || {
                    if committed {
                        tm.apply_commit_decision(tid);
                    } else {
                        let merged = tm.inner.lock().get(&tid).map(|i| i.merged.clone());
                        if let Some(merged) = merged {
                            let _ = tm.abort_local_tree(tid, &merged);
                        }
                    }
                });
            }
        }
    }

    fn record_vote(&self, tid: Tid, from: NodeId, vote: Vote) {
        let mut inner = self.inner.lock();
        if let Some(info) = inner.get_mut(&tid) {
            info.votes.insert(from, vote);
        }
        self.cond.notify_all();
    }

    /// Participant side of phase 1: prepare the local subtree and vote.
    /// `full` marks a [`CommitMsg::PrepareFull`]: the read-only drop-out
    /// is suppressed, so this node forces a prepare record and joins
    /// phase 2 even when its subtree logged nothing.
    fn handle_prepare(self: Arc<Self>, from: NodeId, tid: Tid, merged: Vec<Tid>, full: bool) {
        let transport = self.transport();
        // Idempotence: if already prepared or resolved, re-vote accordingly.
        {
            let inner = self.inner.lock();
            if let Some(info) = inner.get(&tid) {
                match info.phase {
                    TxPhase::Prepared => {
                        drop(inner);
                        self.send_traced(
                            &transport,
                            from,
                            CommitMsg::VoteYes { tid, from: self.node },
                        );
                        return;
                    }
                    TxPhase::Committed => {
                        drop(inner);
                        self.send_traced(
                            &transport,
                            from,
                            CommitMsg::CommitAck { tid, from: self.node },
                        );
                        return;
                    }
                    TxPhase::Aborted => {
                        drop(inner);
                        self.send_traced(
                            &transport,
                            from,
                            CommitMsg::VoteNo { tid, from: self.node },
                        );
                        return;
                    }
                    TxPhase::Running => {}
                }
            }
        }

        // Gather local participants across all merged tids.
        let mut participants: HashMap<String, Arc<dyn Participant>> = HashMap::new();
        {
            let mut inner = self.inner.lock();
            let entry = inner.entry(tid).or_insert_with(|| TxInfo::new(Tid::NULL, tid));
            entry.remote_parent = Some(from);
            for t in &merged {
                if let Some(info) = inner.get(t) {
                    for (k, v) in &info.participants {
                        participants.entry(k.clone()).or_insert_with(|| Arc::clone(v));
                    }
                }
            }
            if let Some(info) = inner.get(&tid) {
                for (k, v) in &info.participants {
                    participants.entry(k.clone()).or_insert_with(|| Arc::clone(v));
                }
            }
            // Attach the merged set's participants to the top-level entry
            // so phase 2 (commit or abort) can finish them — they were
            // enlisted under subtransaction tids.
            if let Some(info) = inner.get_mut(&tid) {
                for (k, v) in &participants {
                    info.participants.entry(k.clone()).or_insert_with(|| Arc::clone(v));
                }
            }
        }

        let mut updates = false;
        for p in participants.values() {
            for t in &merged {
                match p.prepare(*t) {
                    Ok(u) => updates |= u,
                    Err(_) => {
                        self.send_traced(
                            &transport,
                            from,
                            CommitMsg::VoteNo { tid, from: self.node },
                        );
                        let _ = self.abort_local_tree(tid, &merged);
                        return;
                    }
                }
            }
        }

        // Descend: this node coordinates its own children in the tree.
        let mut children: HashSet<NodeId> = HashSet::new();
        for t in &merged {
            children.extend(transport.children(*t));
        }
        children.remove(&from);
        let children: Vec<NodeId> = children.into_iter().collect();
        let mut yes_children = Vec::new();
        if !children.is_empty() {
            // The baseline propagates down the tree: a full-2PC prepare
            // forces every descendant into phase 2 as well.
            match self.collect_votes(tid, &merged, &children, full) {
                Ok((yes, child_updates)) => {
                    updates |= child_updates;
                    yes_children = yes;
                }
                Err(_) => {
                    self.send_traced(&transport, from, CommitMsg::VoteNo { tid, from: self.node });
                    let _ = self.abort_local_tree(tid, &merged);
                    return;
                }
            }
        }

        if updates || full {
            // Parent tids for remote-origin merged records, then the forced
            // prepare record (batched with concurrent committers when
            // group commit is on); only now may we vote yes.
            for t in &merged {
                if *t != tid {
                    self.rm.log_begin(*t, tid);
                }
            }
            if self.rm.log_prepare(tid, from).is_err() {
                self.send_traced(&transport, from, CommitMsg::VoteNo { tid, from: self.node });
                return;
            }
            crash_point!(&self.crash, "tm.vote.logged");
            {
                let mut inner = self.inner.lock();
                if let Some(info) = inner.get_mut(&tid) {
                    info.phase = TxPhase::Prepared;
                    info.yes_children = yes_children;
                    info.merged = merged.clone();
                }
            }
            self.send_traced(&transport, from, CommitMsg::VoteYes { tid, from: self.node });
            // We are now in doubt: if no decision arrives within the vote
            // deadline, start pulling the outcome instead of waiting for
            // coordinator retransmissions that may never come.
            self.spawn_decision_watchdog(tid, from);
        } else {
            // Read-only subtree: vote and forget (no phase 2 needed).
            {
                let mut inner = self.inner.lock();
                if let Some(info) = inner.get_mut(&tid) {
                    info.phase = TxPhase::Committed;
                }
            }
            for p in participants.values() {
                for t in &merged {
                    p.finish(*t, true);
                }
            }
            if self.commit_paths() == CommitPathPolicy::Fast {
                if let Some(c) = self.readonly_votes.lock().as_ref() {
                    c.inc();
                }
                self.emit(tid, TraceEvent::CommitPath { one_phase: false, read_only: true });
            }
            self.send_traced(&transport, from, CommitMsg::VoteReadOnly { tid, from: self.node });
        }
    }

    /// Participant side of phase 2 (commit).
    fn handle_commit(self: Arc<Self>, from: NodeId, tid: Tid) {
        let transport = self.transport();
        if !self.inner.lock().contains_key(&tid) {
            // Already resolved and forgotten: just re-ack.
            self.send_traced(&transport, from, CommitMsg::CommitAck { tid, from: self.node });
            return;
        }
        if !self.apply_commit_decision(tid) {
            return; // keep in doubt; coordinator will retransmit
        }
        self.send_traced(&transport, from, CommitMsg::CommitAck { tid, from: self.node });
        crash_point!(&self.crash, "tm.ack.sent");
    }

    /// Applies a known commit decision to a prepared transaction (from the
    /// coordinator's phase 2 or a peer's [`CommitMsg::OutcomeAnswer`]).
    /// Idempotent; returns false only if the commit record could not be
    /// logged (the transaction stays in doubt for a retransmission).
    fn apply_commit_decision(self: &Arc<Self>, tid: Tid) -> bool {
        let (merged, participants, yes_children, phase) = {
            let inner = self.inner.lock();
            match inner.get(&tid) {
                Some(info) => (
                    info.merged.clone(),
                    info.participants.clone(),
                    info.yes_children.clone(),
                    info.phase,
                ),
                None => return true,
            }
        };
        if phase == TxPhase::Prepared {
            if self.rm.log_commit(tid).is_err() {
                return false;
            }
            crash_point!(&self.crash, "tm.commit.logged");
            {
                let mut inner = self.inner.lock();
                if let Some(info) = inner.get_mut(&tid) {
                    info.phase = TxPhase::Committed;
                }
            }
            self.outcomes.lock().insert(tid, true);
            for p in participants.values() {
                for t in &merged {
                    p.finish(*t, true);
                }
            }
            self.cond.notify_all();
            if !yes_children.is_empty() {
                self.chase_acks_blocking(
                    tid,
                    yes_children.into_iter().collect(),
                    CommitMsg::Commit { tid },
                );
            }
        }
        true
    }

    /// Participant side of abort.
    fn handle_abort(self: Arc<Self>, from: NodeId, tid: Tid) {
        let transport = self.transport();
        let merged = {
            let inner = self.inner.lock();
            inner.get(&tid).map(|i| i.merged.clone())
        };
        if let Some(merged) = merged {
            let _ = self.abort_local_tree(tid, &merged);
        }
        self.send_traced(&transport, from, CommitMsg::AbortAck { tid, from: self.node });
    }

    fn abort_local_tree(&self, tid: Tid, merged: &[Tid]) -> Result<(), TmError> {
        let participants = {
            let mut inner = self.inner.lock();
            let info = match inner.get_mut(&tid) {
                Some(i) => i,
                None => return Ok(()),
            };
            if info.phase == TxPhase::Aborted {
                return Ok(());
            }
            info.phase = TxPhase::Aborted;
            info.participants.clone()
        };
        for t in merged.iter().rev() {
            self.rm.abort(*t).map_err(|e| TmError::Rm(e.to_string()))?;
        }
        for p in participants.values() {
            for t in merged {
                p.finish(*t, false);
            }
        }
        self.outcomes.lock().insert(tid, false);
        // Propagate to this node's own children.
        let transport = self.transport();
        let mut children: HashSet<NodeId> = HashSet::new();
        for t in merged {
            children.extend(transport.children(*t));
        }
        for c in children {
            self.send_traced(&transport, c, CommitMsg::Abort { tid });
        }
        self.cond.notify_all();
        Ok(())
    }

    /// Loads durable outcomes discovered by crash recovery, and registers
    /// in-doubt transactions for resolution.
    pub fn load_recovery(
        self: &Arc<Self>,
        committed: &[Tid],
        aborted: &[Tid],
        in_doubt: &[(Tid, NodeId)],
    ) {
        {
            let mut o = self.outcomes.lock();
            for t in committed {
                o.insert(*t, true);
            }
            for t in aborted {
                o.insert(*t, false);
            }
        }
        // Only now — with every durable outcome loaded — may an unknown
        // tid be presumed aborted. A live participant inquiring between
        // reboot and log replay must not draw an Abort for a transaction
        // whose commit record is sitting on disk.
        self.recovered.store(true, Ordering::Release);
        let mut inner = self.inner.lock();
        for (tid, coord) in in_doubt {
            let info = inner.entry(*tid).or_insert_with(|| TxInfo::new(Tid::NULL, *tid));
            info.phase = TxPhase::Prepared;
            info.remote_parent = Some(*coord);
        }
        drop(inner);
        // Pull the outcome of each in-doubt transaction until resolved.
        for (tid, coord) in in_doubt.iter().copied() {
            self.spawn_resolver(tid, coord, Duration::from_secs(10));
        }
    }

    /// Transactions still in doubt (voted yes, awaiting the decision) at
    /// this node — the post-scenario audit's "unresolved Tids".
    pub fn in_doubt_tids(&self) -> Vec<Tid> {
        self.inner
            .lock()
            .iter()
            .filter(|(_, i)| i.phase == TxPhase::Prepared)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Failure-detector callback: `peer` is suspected unreachable.
    ///
    /// Participant side: every in-doubt transaction whose coordinator is
    /// the suspect gets an immediate resolver (Inquire at the coordinator
    /// plus, cooperatively, an outcome query broadcast to fellow
    /// participants). Coordinator side: a still-running transaction that
    /// already spans the suspect can never prepare there, so it is aborted
    /// now with a durable abort record — when the suspect rejoins, its
    /// inquiry finds an authoritative answer instead of a hung commit.
    pub fn peer_suspected(self: &Arc<Self>, peer: NodeId) {
        if !self.cooperative.load(Ordering::Relaxed) {
            return;
        }
        let snapshot: Vec<(Tid, TxPhase, Option<NodeId>, Vec<Tid>)> = self
            .inner
            .lock()
            .iter()
            .map(|(tid, i)| (*tid, i.phase, i.remote_parent, i.merged.clone()))
            .collect();
        let transport = self.transport();
        for (tid, phase, remote_parent, merged) in snapshot {
            match phase {
                TxPhase::Prepared if remote_parent == Some(peer) => {
                    self.spawn_resolver(tid, peer, self.timeouts().vote_deadline * 24);
                }
                TxPhase::Running if tid.node == self.node => {
                    let spans_suspect =
                        merged.iter().any(|t| transport.children(*t).contains(&peer));
                    if spans_suspect {
                        let _ = self.abort_internal(tid);
                    }
                }
                _ => {}
            }
        }
    }

    /// Waits out the vote deadline after voting yes; if the decision still
    /// has not arrived, assumes the coordinator is gone and starts pulling.
    fn spawn_decision_watchdog(self: &Arc<Self>, tid: Tid, coord: NodeId) {
        let tm = Arc::clone(self);
        std::thread::spawn(move || {
            let timeouts = tm.timeouts();
            let deadline = Instant::now() + timeouts.vote_deadline;
            while Instant::now() < deadline {
                if !matches!(tm.phase(tid), Some(TxPhase::Prepared)) {
                    return;
                }
                std::thread::sleep(timeouts.retransmit);
            }
            tm.spawn_resolver(tid, coord, timeouts.vote_deadline * 24);
        });
    }

    /// Starts one resolver thread for an in-doubt transaction (no-op if
    /// one is already running). The resolver inquires at the coordinator
    /// with exponential backoff and — when cooperative termination is on —
    /// broadcasts [`CommitMsg::OutcomeQuery`] to fellow participants, so
    /// any node that durably knows the outcome can end the doubt.
    fn spawn_resolver(self: &Arc<Self>, tid: Tid, coord: NodeId, patience: Duration) {
        if !self.resolving.lock().insert(tid) {
            return;
        }
        let tm = Arc::clone(self);
        std::thread::spawn(move || {
            let timeouts = tm.timeouts();
            let deadline = Instant::now() + patience;
            let mut backoff = timeouts.retransmit;
            let cap = timeouts.retransmit * 8;
            while Instant::now() < deadline {
                if !matches!(tm.phase(tid), Some(TxPhase::Prepared)) {
                    break;
                }
                let transport = tm.transport();
                tm.send_traced(&transport, coord, CommitMsg::Inquire { tid, from: tm.node });
                if tm.cooperative.load(Ordering::Relaxed) {
                    tm.emit(tid, TraceEvent::TerminationQuery { to: coord });
                    transport.broadcast(CommitMsg::OutcomeQuery { tid, from: tm.node });
                }
                // Exponential backoff between probes, but keep checking
                // for resolution at retransmit granularity so an answer
                // ends the doubt promptly.
                let wake = Instant::now() + backoff;
                while Instant::now() < wake {
                    if !matches!(tm.phase(tid), Some(TxPhase::Prepared)) {
                        tm.resolving.lock().remove(&tid);
                        return;
                    }
                    std::thread::sleep(timeouts.retransmit.min(Duration::from_millis(25)));
                }
                backoff = (backoff * 2).min(cap);
            }
            tm.resolving.lock().remove(&tid);
        });
    }
}

/// Maps an outbound commit datagram to its trace event (`None` for
/// recovery traffic with a dedicated event or no event of its own:
/// `Inquire` and `OutcomeQuery`, which is traced as `TerminationQuery`).
fn commit_msg_send_event(to: NodeId, msg: &CommitMsg) -> Option<(Tid, TraceEvent)> {
    Some(match msg {
        CommitMsg::Prepare { tid, .. } | CommitMsg::PrepareFull { tid, .. } => {
            (*tid, TraceEvent::PrepareSend { to })
        }
        CommitMsg::VoteYes { tid, .. } => (*tid, TraceEvent::VoteSend { to, vote: ObsVote::Yes }),
        CommitMsg::VoteReadOnly { tid, .. } => {
            (*tid, TraceEvent::VoteSend { to, vote: ObsVote::ReadOnly })
        }
        CommitMsg::VoteNo { tid, .. } => (*tid, TraceEvent::VoteSend { to, vote: ObsVote::No }),
        CommitMsg::Commit { tid } => (*tid, TraceEvent::DecisionSend { to, commit: true }),
        CommitMsg::Abort { tid } => (*tid, TraceEvent::DecisionSend { to, commit: false }),
        CommitMsg::CommitAck { tid, .. } | CommitMsg::AbortAck { tid, .. } => {
            (*tid, TraceEvent::AckSend { to })
        }
        CommitMsg::Inquire { .. } | CommitMsg::OutcomeQuery { .. } => return None,
        CommitMsg::OutcomeAnswer { tid, committed, .. } => {
            (*tid, TraceEvent::DecisionSend { to, commit: *committed })
        }
    })
}

/// Inbound counterpart of [`commit_msg_send_event`].
fn commit_msg_recv_event(from: NodeId, msg: &CommitMsg) -> Option<(Tid, TraceEvent)> {
    Some(match msg {
        CommitMsg::Prepare { tid, .. } | CommitMsg::PrepareFull { tid, .. } => {
            (*tid, TraceEvent::PrepareRecv { from })
        }
        CommitMsg::VoteYes { tid, .. } => (*tid, TraceEvent::VoteRecv { from, vote: ObsVote::Yes }),
        CommitMsg::VoteReadOnly { tid, .. } => {
            (*tid, TraceEvent::VoteRecv { from, vote: ObsVote::ReadOnly })
        }
        CommitMsg::VoteNo { tid, .. } => (*tid, TraceEvent::VoteRecv { from, vote: ObsVote::No }),
        CommitMsg::Commit { tid } => (*tid, TraceEvent::DecisionRecv { from, commit: true }),
        CommitMsg::Abort { tid } => (*tid, TraceEvent::DecisionRecv { from, commit: false }),
        CommitMsg::CommitAck { tid, .. } | CommitMsg::AbortAck { tid, .. } => {
            (*tid, TraceEvent::AckRecv { from })
        }
        CommitMsg::Inquire { .. } | CommitMsg::OutcomeQuery { .. } => return None,
        CommitMsg::OutcomeAnswer { tid, committed, .. } => {
            (*tid, TraceEvent::DecisionRecv { from, commit: *committed })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_kernel::{BufferPool, MemDisk, SegmentId, SegmentSpec};
    use tabs_wal::{LogManager, MemLogDevice};

    fn make_rm(node: NodeId) -> (Arc<RecoveryManager>, Arc<BufferPool>) {
        let perf = PerfCounters::new();
        let pool = BufferPool::new(16, Arc::clone(&perf));
        let disk = MemDisk::new(64);
        pool.register_segment(SegmentSpec {
            id: SegmentId { node, index: 0 },
            name: "t".into(),
            disk,
            base_sector: 0,
            pages: 64,
        })
        .unwrap();
        let log = LogManager::open(MemLogDevice::new(1 << 20), Arc::clone(&perf)).unwrap();
        let rm = RecoveryManager::new(node, log, Arc::clone(&pool), perf);
        pool.set_gate(rm.gate());
        (rm, pool)
    }

    fn make_tm(node: NodeId) -> (Arc<TransactionManager>, Arc<RecoveryManager>, Arc<BufferPool>) {
        let (rm, pool) = make_rm(node);
        let tm = TransactionManager::new(node, 1, Arc::clone(&rm), PerfCounters::new());
        (tm, rm, pool)
    }

    /// A participant that records lifecycle events.
    #[derive(Default)]
    struct TracePart {
        log: Mutex<Vec<String>>,
        has_updates: std::sync::atomic::AtomicBool,
        fail_prepare: std::sync::atomic::AtomicBool,
    }

    impl Participant for TracePart {
        fn prepare(&self, tid: Tid) -> Result<bool, String> {
            if self.fail_prepare.load(Ordering::Relaxed) {
                return Err("refused".into());
            }
            self.log.lock().push(format!("prepare {tid}"));
            Ok(self.has_updates.load(Ordering::Relaxed))
        }
        fn finish(&self, tid: Tid, committed: bool) {
            self.log.lock().push(format!("finish {tid} {committed}"));
        }
        fn commit_subtransaction(&self, child: Tid, parent: Tid) {
            self.log.lock().push(format!("subcommit {child}->{parent}"));
        }
    }

    #[test]
    fn begin_allocates_unique_tids() {
        let (tm, _rm, _p) = make_tm(NodeId(1));
        let a = tm.begin(Tid::NULL).unwrap();
        let b = tm.begin(Tid::NULL).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.node, NodeId(1));
        assert_eq!(a.incarnation, 1);
    }

    #[test]
    fn begin_subtransaction_requires_live_parent() {
        let (tm, _rm, _p) = make_tm(NodeId(1));
        let top = tm.begin(Tid::NULL).unwrap();
        let sub = tm.begin(top).unwrap();
        assert_ne!(sub, top);
        let bogus = Tid { node: NodeId(9), incarnation: 1, seq: 99 };
        assert!(matches!(tm.begin(bogus), Err(TmError::Unknown(_))));
        tm.abort(top).unwrap();
        assert!(matches!(tm.begin(top), Err(TmError::Aborted(_))));
    }

    #[test]
    fn local_read_only_commit_writes_no_commit_record() {
        let (tm, rm, _p) = make_tm(NodeId(1));
        let part = Arc::new(TracePart::default());
        let t = tm.begin(Tid::NULL).unwrap();
        tm.enlist(t, "srv", part.clone());
        assert!(tm.end(t).unwrap());
        let has_commit = rm
            .log()
            .all_entries()
            .iter()
            .any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. }));
        assert!(!has_commit, "read-only commit skips the forced record");
        let log = part.log.lock().clone();
        assert!(log.iter().any(|l| l.starts_with("prepare")));
        assert!(log.iter().any(|l| l.contains("finish") && l.contains("true")));
    }

    #[test]
    fn local_write_commit_forces_commit_record() {
        let (tm, rm, _p) = make_tm(NodeId(1));
        let part = Arc::new(TracePart::default());
        part.has_updates.store(true, Ordering::Relaxed);
        let t = tm.begin(Tid::NULL).unwrap();
        tm.enlist(t, "srv", part);
        assert!(tm.end(t).unwrap());
        let durable = rm.log().durable_entries();
        assert!(durable.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));
    }

    #[test]
    fn failed_prepare_aborts() {
        let (tm, _rm, _p) = make_tm(NodeId(1));
        let part = Arc::new(TracePart::default());
        part.fail_prepare.store(true, Ordering::Relaxed);
        let t = tm.begin(Tid::NULL).unwrap();
        tm.enlist(t, "srv", part.clone());
        assert!(!tm.end(t).unwrap());
        assert_eq!(tm.phase(t), Some(TxPhase::Aborted));
        assert!(part.log.lock().iter().any(|l| l.contains("finish") && l.contains("false")));
    }

    #[test]
    fn subtransaction_commit_transfers_to_parent() {
        let (tm, _rm, _p) = make_tm(NodeId(1));
        let part = Arc::new(TracePart::default());
        let top = tm.begin(Tid::NULL).unwrap();
        let sub = tm.begin(top).unwrap();
        tm.enlist(sub, "srv", part.clone());
        assert!(tm.end(sub).unwrap());
        assert!(part.log.lock().iter().any(|l| l.starts_with(&format!("subcommit {sub}"))));
        // Parent commit finishes the child's participant too.
        assert!(tm.end(top).unwrap());
        let log = part.log.lock().clone();
        assert!(log.iter().any(|l| l == &format!("finish {sub} true")));
    }

    #[test]
    fn subtransaction_abort_leaves_parent_running() {
        let (tm, _rm, _p) = make_tm(NodeId(1));
        let top = tm.begin(Tid::NULL).unwrap();
        let sub = tm.begin(top).unwrap();
        tm.abort(sub).unwrap();
        assert_eq!(tm.phase(sub), Some(TxPhase::Aborted));
        assert_eq!(tm.phase(top), Some(TxPhase::Running));
        assert!(tm.end(top).unwrap());
    }

    #[test]
    fn end_on_aborted_returns_false() {
        let (tm, _rm, _p) = make_tm(NodeId(1));
        let t = tm.begin(Tid::NULL).unwrap();
        tm.abort(t).unwrap();
        assert!(!tm.end(t).unwrap());
        assert!(tm.is_aborted(t));
    }

    #[test]
    fn active_states_for_checkpoint() {
        let (tm, _rm, _p) = make_tm(NodeId(1));
        let a = tm.begin(Tid::NULL).unwrap();
        let b = tm.begin(Tid::NULL).unwrap();
        tm.abort(b).unwrap();
        let states = tm.active_states();
        assert!(states.contains(&(a, TxState::Active)));
        assert!(!states.iter().any(|(t, _)| *t == b));
    }

    // ---- Two-node distributed commit through a loopback transport ----

    /// Routes CommitMsgs synchronously between two TransactionManagers and
    /// exposes a static spanning tree (node 1 is parent of node 2 for every
    /// tid once marked).
    struct Loopback {
        peers: Mutex<HashMap<NodeId, Arc<TransactionManager>>>,
        children_of: Mutex<HashMap<NodeId, Vec<NodeId>>>,
        sent: Mutex<Vec<(NodeId, CommitMsg)>>,
        /// Nodes this transport reports as suspected-unreachable.
        dead: Mutex<HashSet<NodeId>>,
        /// Nodes whose incoming phase-2 decisions are silently dropped
        /// (they voted but will never ack — died mid-commit).
        drop_decisions_to: Mutex<HashSet<NodeId>>,
        /// Nodes whose footprint includes *unreplicated* work: the
        /// transport reports them not replica-only, so the quorum waiver
        /// must refuse to stand in for their missing vote.
        plain: Mutex<HashSet<NodeId>>,
        /// Fired on every reachability probe with the probed node — lets
        /// a test inject traffic precisely inside the waiver's unlocked
        /// window.
        #[allow(clippy::type_complexity)]
        on_unreachable: Mutex<Option<Box<dyn Fn(NodeId) + Send>>>,
        me: NodeId,
    }

    impl Loopback {
        fn pair(
            a: &Arc<TransactionManager>,
            b: &Arc<TransactionManager>,
        ) -> (Arc<Loopback>, Arc<Loopback>) {
            let ta = Arc::new(Loopback {
                peers: Mutex::new(HashMap::new()),
                children_of: Mutex::new(HashMap::new()),
                sent: Mutex::new(Vec::new()),
                dead: Mutex::new(HashSet::new()),
                drop_decisions_to: Mutex::new(HashSet::new()),
                plain: Mutex::new(HashSet::new()),
                on_unreachable: Mutex::new(None),
                me: a.node(),
            });
            let tb = Arc::new(Loopback {
                peers: Mutex::new(HashMap::new()),
                children_of: Mutex::new(HashMap::new()),
                sent: Mutex::new(Vec::new()),
                dead: Mutex::new(HashSet::new()),
                drop_decisions_to: Mutex::new(HashSet::new()),
                plain: Mutex::new(HashSet::new()),
                on_unreachable: Mutex::new(None),
                me: b.node(),
            });
            ta.peers.lock().insert(b.node(), Arc::clone(b));
            tb.peers.lock().insert(a.node(), Arc::clone(a));
            a.set_transport(Arc::clone(&ta) as Arc<dyn CommitTransport>);
            b.set_transport(Arc::clone(&tb) as Arc<dyn CommitTransport>);
            (ta, tb)
        }

        fn set_children(&self, children: Vec<NodeId>) {
            self.children_of.lock().insert(self.me, children);
        }

        fn mark_dead(&self, node: NodeId) {
            self.dead.lock().insert(node);
        }

        fn mark_plain(&self, node: NodeId) {
            self.plain.lock().insert(node);
        }
    }

    impl CommitTransport for Loopback {
        fn send(&self, to: NodeId, msg: CommitMsg) {
            self.sent.lock().push((to, msg.clone()));
            if matches!(msg, CommitMsg::Commit { .. } | CommitMsg::Abort { .. })
                && self.drop_decisions_to.lock().contains(&to)
            {
                return;
            }
            let peer = self.peers.lock().get(&to).cloned();
            if let Some(p) = peer {
                let from = self.me;
                p.handle(from, msg);
            }
        }
        fn unreachable(&self, to: NodeId) -> bool {
            if let Some(hook) = self.on_unreachable.lock().as_ref() {
                hook(to);
            }
            self.dead.lock().contains(&to)
        }
        fn replica_only(&self, _tid: Tid, child: NodeId) -> bool {
            !self.plain.lock().contains(&child)
        }
        fn children(&self, _tid: Tid) -> Vec<NodeId> {
            self.children_of.lock().get(&self.me).cloned().unwrap_or_default()
        }
        fn parent(&self, _tid: Tid) -> Option<NodeId> {
            None
        }
        fn broadcast(&self, msg: CommitMsg) {
            let peers: Vec<_> = self.peers.lock().values().cloned().collect();
            for p in peers {
                p.handle(self.me, msg.clone());
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn two_node_rig() -> (
        Arc<TransactionManager>,
        Arc<TransactionManager>,
        Arc<Loopback>,
        Arc<Loopback>,
        Arc<RecoveryManager>,
        Arc<RecoveryManager>,
    ) {
        let (tm1, rm1, _p1) = make_tm(NodeId(1));
        let (tm2, rm2, _p2) = make_tm(NodeId(2));
        let (t1, t2) = Loopback::pair(&tm1, &tm2);
        (tm1, tm2, t1, t2, rm1, rm2)
    }

    #[test]
    fn two_node_write_commit() {
        let (tm1, tm2, t1, _t2, rm1, rm2) = two_node_rig();
        t1.set_children(vec![NodeId(2)]);
        let part1 = Arc::new(TracePart::default());
        part1.has_updates.store(true, Ordering::Relaxed);
        let part2 = Arc::new(TracePart::default());
        part2.has_updates.store(true, Ordering::Relaxed);

        let t = tm1.begin(Tid::NULL).unwrap();
        tm1.enlist(t, "s1", part1.clone());
        tm2.enlist(t, "s2", part2.clone()); // remote work happened on node 2
        assert!(tm1.end(t).unwrap());

        // Both logs carry durable records; node 2 prepared then committed.
        let recs2 = rm2.log().durable_entries();
        assert!(recs2.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Prepare { .. })));
        assert!(recs2.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));
        assert!(rm1
            .log()
            .durable_entries()
            .iter()
            .any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));
        assert!(part2.log.lock().iter().any(|l| l.contains("finish") && l.contains("true")));
        assert_eq!(tm2.phase(t), Some(TxPhase::Committed));
    }

    #[test]
    fn two_node_read_only_skips_phase_two() {
        let (tm1, tm2, t1, t2, rm1, rm2) = two_node_rig();
        t1.set_children(vec![NodeId(2)]);
        let part2 = Arc::new(TracePart::default()); // read-only
        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2.clone());
        assert!(tm1.end(t).unwrap());
        // No prepare or commit records anywhere: fully read-only.
        assert!(rm1.log().durable_entries().is_empty());
        assert!(rm2.log().durable_entries().is_empty());
        // Messages: exactly one Prepare and one VoteReadOnly.
        let sent1 = t1.sent.lock().clone();
        assert_eq!(sent1.len(), 1);
        assert!(matches!(sent1[0].1, CommitMsg::Prepare { .. }));
        let sent2 = t2.sent.lock().clone();
        assert_eq!(sent2.len(), 1);
        assert!(matches!(sent2[0].1, CommitMsg::VoteReadOnly { .. }));
    }

    #[test]
    fn full_policy_forces_read_only_participant_through_both_phases() {
        let (tm1, tm2, t1, t2, rm1, rm2) = two_node_rig();
        tm1.set_commit_paths(CommitPathPolicy::Full);
        tm2.set_commit_paths(CommitPathPolicy::Full);
        t1.set_children(vec![NodeId(2)]);
        let part2 = Arc::new(TracePart::default()); // read-only
        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2);
        assert!(tm1.end(t).unwrap());
        // The pessimistic baseline forces prepare + commit records on the
        // read-only participant and a commit record on the coordinator.
        let recs2 = rm2.log().durable_entries();
        assert!(recs2.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Prepare { .. })));
        assert!(recs2.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));
        assert!(rm1
            .log()
            .durable_entries()
            .iter()
            .any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));
        // Full four-message exchange: PrepareFull/VoteYes, Commit/CommitAck.
        // Phase 2 runs on the worker pool, so poll for the ack.
        for _ in 0..50 {
            if t2.sent.lock().iter().any(|(_, m)| matches!(m, CommitMsg::CommitAck { .. })) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let sent1 = t1.sent.lock().clone();
        assert!(matches!(sent1[0].1, CommitMsg::PrepareFull { .. }));
        assert!(sent1.iter().any(|(_, m)| matches!(m, CommitMsg::Commit { .. })));
        let sent2 = t2.sent.lock().clone();
        assert!(matches!(sent2[0].1, CommitMsg::VoteYes { .. }));
        assert!(sent2.iter().any(|(_, m)| matches!(m, CommitMsg::CommitAck { .. })));
    }

    #[test]
    fn fast_policy_sole_writer_commits_in_one_phase() {
        let (tm, rm, _p) = make_tm(NodeId(1));
        tm.set_commit_paths(CommitPathPolicy::Fast);
        let one_pc = Counter::default();
        let read_only = Counter::default();
        tm.set_fastpath_metrics(one_pc.clone(), read_only.clone());
        let part = Arc::new(TracePart::default());
        part.has_updates.store(true, Ordering::Relaxed);
        let t = tm.begin(Tid::NULL).unwrap();
        tm.enlist(t, "srv", part);
        assert!(tm.end(t).unwrap());
        // One forced commit record, no prepare record, and the 1PC
        // counter ticked: single-participant commit skipped phase 1.
        let durable = rm.log().durable_entries();
        assert!(durable.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));
        assert!(!durable.iter().any(|e| matches!(e.record, tabs_wal::LogRecord::Prepare { .. })));
        assert_eq!(one_pc.get(), 1);
        assert_eq!(read_only.get(), 0);
    }

    #[test]
    fn fast_policy_read_only_voter_matches_seed_wire_traffic() {
        let (tm1, tm2, t1, t2, rm1, rm2) = two_node_rig();
        tm1.set_commit_paths(CommitPathPolicy::Fast);
        tm2.set_commit_paths(CommitPathPolicy::Fast);
        let read_only = Counter::default();
        tm2.set_fastpath_metrics(Counter::default(), read_only.clone());
        t1.set_children(vec![NodeId(2)]);
        let part2 = Arc::new(TracePart::default()); // read-only
        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2);
        assert!(tm1.end(t).unwrap());
        // Identical observable behaviour to the seed path: no records,
        // one Prepare out, one VoteReadOnly back — plus the counter.
        assert!(rm1.log().durable_entries().is_empty());
        assert!(rm2.log().durable_entries().is_empty());
        let sent1 = t1.sent.lock().clone();
        assert_eq!(sent1.len(), 1);
        assert!(matches!(sent1[0].1, CommitMsg::Prepare { .. }));
        let sent2 = t2.sent.lock().clone();
        assert_eq!(sent2.len(), 1);
        assert!(matches!(sent2[0].1, CommitMsg::VoteReadOnly { .. }));
        assert_eq!(read_only.get(), 1);
    }

    #[test]
    fn quorum_waives_dead_minority_member_and_commits() {
        // Replica set {1, 2, 3}: the coordinator leads, node 2 is a live
        // follower, node 3 is dead. Two of three are durable, so the
        // missing vote is waived and the commit proceeds.
        let (tm1, tm2, t1, _t2, rm1, _rm2) = two_node_rig();
        tm1.set_replication(ReplicationPolicy::enabled());
        tm1.set_quorum_groups(vec![vec![NodeId(1), NodeId(2), NodeId(3)]]);
        let quorum = Counter::default();
        tm1.set_replication_metrics(quorum.clone(), Counter::default());
        t1.set_children(vec![NodeId(2), NodeId(3)]);
        t1.mark_dead(NodeId(3));
        let part2 = Arc::new(TracePart::default());
        part2.has_updates.store(true, Ordering::Relaxed);

        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2.clone());
        assert!(tm1.end(t).unwrap(), "minority death must not block the commit");
        assert_eq!(tm2.phase(t), Some(TxPhase::Committed));
        assert_eq!(quorum.get(), 1);
        assert!(rm1
            .log()
            .durable_entries()
            .iter()
            .any(|e| matches!(e.record, tabs_wal::LogRecord::Commit { .. })));
        // The dead member was asked to prepare but excluded from phase 2:
        // it learns the outcome from the durable record when it rejoins.
        let sent1 = t1.sent.lock().clone();
        assert!(sent1
            .iter()
            .any(|(to, m)| *to == NodeId(3) && matches!(m, CommitMsg::Prepare { .. })));
        assert!(!sent1
            .iter()
            .any(|(to, m)| *to == NodeId(3) && matches!(m, CommitMsg::Commit { .. })));
    }

    #[test]
    fn unreplicated_footprint_blocks_the_waiver_and_aborts() {
        // Same replica set {1, 2, 3} with node 3 dead — but node 3's
        // footprint includes unreplicated work (the transport reports it
        // not replica-only). No surviving member holds that state, so
        // presume-abort must win over the quorum waiver: committing would
        // silently drop the dead node's unreplicated writes.
        let (tm1, tm2, t1, _t2, _rm1, _rm2) = two_node_rig();
        tm1.set_replication(ReplicationPolicy::enabled());
        tm1.set_quorum_groups(vec![vec![NodeId(1), NodeId(2), NodeId(3)]]);
        tm1.set_timeouts(TmTimeouts {
            retransmit: Duration::from_millis(10),
            vote_deadline: Duration::from_millis(300),
            ack_deadline: Duration::from_millis(300),
        });
        t1.set_children(vec![NodeId(2), NodeId(3)]);
        t1.mark_dead(NodeId(3));
        t1.mark_plain(NodeId(3));
        let part2 = Arc::new(TracePart::default());
        part2.has_updates.store(true, Ordering::Relaxed);

        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2.clone());
        assert!(
            !tm1.end(t).unwrap(),
            "a dead member with unreplicated writes must abort, not be waived"
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while tm2.phase(t) != Some(TxPhase::Aborted) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(tm2.phase(t), Some(TxPhase::Aborted));
    }

    #[test]
    fn late_no_vote_during_the_waiver_window_still_aborts() {
        // Replica set {1, 2, 3}: node 2 votes Yes, node 3 looks dead, so
        // the waiver fast-path engages for node 3's missing vote. While
        // the coordinator is outside its lock probing reachability, node
        // 3's No vote lands — the waiver must notice it on re-lock and
        // abort: it stands in for silence, never for refusal.
        let (tm1, tm2, t1, _t2, _rm1, _rm2) = two_node_rig();
        tm1.set_replication(ReplicationPolicy::enabled());
        tm1.set_quorum_groups(vec![vec![NodeId(1), NodeId(2), NodeId(3)]]);
        t1.set_children(vec![NodeId(2), NodeId(3)]);
        t1.mark_dead(NodeId(3));
        let part2 = Arc::new(TracePart::default());
        part2.has_updates.store(true, Ordering::Relaxed);

        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2.clone());
        // The unreachability probe itself delivers the straggling No —
        // landing it precisely inside the unlocked window between the
        // waiver's reachability check and its commit decision.
        let tm1_handle = Arc::clone(&tm1);
        *t1.on_unreachable.lock() = Some(Box::new(move |probed| {
            if probed == NodeId(3) {
                tm1_handle.handle(NodeId(3), CommitMsg::VoteNo { tid: t, from: NodeId(3) });
            }
        }));
        assert!(
            !tm1.end(t).unwrap(),
            "a No vote racing the waiver's unlocked window must abort the commit"
        );
        // The abort announcement reaches node 2 from a background chase.
        let deadline = Instant::now() + Duration::from_secs(2);
        while tm2.phase(t) != Some(TxPhase::Aborted) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(tm2.phase(t), Some(TxPhase::Aborted));
    }

    #[test]
    fn dead_majority_aborts_instead_of_waiving() {
        // Replica set {2, 3} without the coordinator: node 3 is dead and
        // node 2 alone is not a majority, so the seed fast-abort fires.
        let (tm1, tm2, t1, _t2, _rm1, _rm2) = two_node_rig();
        tm1.set_replication(ReplicationPolicy::enabled());
        tm1.set_quorum_groups(vec![vec![NodeId(2), NodeId(3)]]);
        tm1.set_timeouts(TmTimeouts {
            retransmit: Duration::from_millis(10),
            vote_deadline: Duration::from_millis(300),
            ack_deadline: Duration::from_millis(300),
        });
        t1.set_children(vec![NodeId(2), NodeId(3)]);
        t1.mark_dead(NodeId(3));
        let part2 = Arc::new(TracePart::default());
        part2.has_updates.store(true, Ordering::Relaxed);

        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2.clone());
        assert!(!tm1.end(t).unwrap(), "no quorum group majority: presume failure and abort");
        // The abort announcement is retransmitted from a background
        // thread; give it a moment to land on node 2.
        let deadline = Instant::now() + Duration::from_secs(2);
        while tm2.phase(t) != Some(TxPhase::Aborted) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(tm2.phase(t), Some(TxPhase::Aborted));
        assert!(part2.log.lock().iter().any(|l| l.contains("finish") && l.contains("false")));
    }

    #[test]
    fn acks_from_members_that_died_mid_commit_are_abandoned() {
        // Node 2 votes yes, then dies before acknowledging the decision:
        // the coordinator abandons the chase instead of spinning to the
        // ack deadline (the rejoining member resolves from the record).
        let (tm1, tm2, t1, _t2, _rm1, _rm2) = two_node_rig();
        tm1.set_replication(ReplicationPolicy::enabled());
        tm1.set_quorum_groups(vec![vec![NodeId(1), NodeId(2)]]);
        let abandoned = Counter::default();
        tm1.set_replication_metrics(Counter::default(), abandoned.clone());
        tm1.set_timeouts(TmTimeouts {
            retransmit: Duration::from_millis(10),
            vote_deadline: Duration::from_secs(5),
            ack_deadline: Duration::from_secs(5),
        });
        t1.set_children(vec![NodeId(2)]);
        t1.drop_decisions_to.lock().insert(NodeId(2));
        t1.mark_dead(NodeId(2));
        let part2 = Arc::new(TracePart::default());
        part2.has_updates.store(true, Ordering::Relaxed);

        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2);
        let start = Instant::now();
        assert!(tm1.end(t).unwrap());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "abandonment must return well before the ack deadline"
        );
        assert_eq!(abandoned.get(), 1);
        // The member never saw the decision: still prepared (in doubt),
        // to be resolved by recovery or cooperative termination.
        assert_eq!(tm2.phase(t), Some(TxPhase::Prepared));
    }

    #[test]
    fn two_node_abort_propagates() {
        let (tm1, tm2, t1, _t2, _rm1, rm2) = two_node_rig();
        t1.set_children(vec![NodeId(2)]);
        let part2 = Arc::new(TracePart::default());
        part2.has_updates.store(true, Ordering::Relaxed);
        let t = tm1.begin(Tid::NULL).unwrap();
        tm2.enlist(t, "s2", part2.clone());
        tm1.abort(t).unwrap();
        // Give the background abort chase a moment to land.
        for _ in 0..50 {
            if tm2.phase(t) == Some(TxPhase::Aborted) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(tm2.phase(t), Some(TxPhase::Aborted));
        assert!(part2.log.lock().iter().any(|l| l.contains("finish") && l.contains("false")));
        assert!(rm2
            .log()
            .all_entries()
            .iter()
            .any(|e| matches!(e.record, tabs_wal::LogRecord::Abort { .. })));
    }

    #[test]
    fn remote_prepare_failure_aborts_whole_transaction() {
        let (tm1, tm2, t1, _t2, _rm1, _rm2) = two_node_rig();
        t1.set_children(vec![NodeId(2)]);
        let part1 = Arc::new(TracePart::default());
        part1.has_updates.store(true, Ordering::Relaxed);
        let part2 = Arc::new(TracePart::default());
        part2.fail_prepare.store(true, Ordering::Relaxed);
        let t = tm1.begin(Tid::NULL).unwrap();
        tm1.enlist(t, "s1", part1.clone());
        tm2.enlist(t, "s2", part2);
        assert!(!tm1.end(t).unwrap());
        assert_eq!(tm1.phase(t), Some(TxPhase::Aborted));
        assert!(part1.log.lock().iter().any(|l| l.contains("finish") && l.contains("false")));
    }

    #[test]
    fn inquire_gets_presumed_abort_for_unknown_only_after_log_replay() {
        let (tm1, _tm2, t1, t2, _rm1, _rm2) = two_node_rig();
        let ghost = Tid { node: NodeId(1), incarnation: 1, seq: 999 };
        // Before node 1 has replayed its log it cannot prove the ghost
        // was never committed: the inquiry must draw no answer.
        t2.send(NodeId(1), CommitMsg::Inquire { tid: ghost, from: NodeId(2) });
        assert!(
            t1.sent.lock().is_empty(),
            "pre-recovery node answered an Inquire with presumed abort"
        );
        // After replay (empty log) the absence of a commit record is
        // proof, and presumed abort applies.
        tm1.load_recovery(&[], &[], &[]);
        t2.send(NodeId(1), CommitMsg::Inquire { tid: ghost, from: NodeId(2) });
        assert!(t1
            .sent
            .lock()
            .iter()
            .any(|(to, m)| *to == NodeId(2) && matches!(m, CommitMsg::Abort { .. })));
    }

    #[test]
    fn in_doubt_resolution_commits_via_inquire() {
        let (tm1, tm2, _t1, _t2, _rm1, _rm2) = two_node_rig();
        let t = tm1.begin(Tid::NULL).unwrap();
        // Simulate: node 1 committed t durably; node 2 recovered in doubt.
        tm1.outcomes.lock().insert(t, true);
        let part2 = Arc::new(TracePart::default());
        tm2.enlist(t, "s2", part2.clone());
        {
            let mut inner = tm2.inner.lock();
            inner.get_mut(&t).unwrap().phase = TxPhase::Prepared;
        }
        tm2.load_recovery(&[], &[], &[(t, NodeId(1))]);
        for _ in 0..100 {
            if tm2.phase(t) == Some(TxPhase::Committed) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(tm2.phase(t), Some(TxPhase::Committed));
        assert!(part2.log.lock().iter().any(|l| l.contains("finish") && l.contains("true")));
    }

    #[test]
    fn inquire_stays_silent_while_decision_is_pending() {
        let (tm1, _tm2, t1, t2, _rm1, _rm2) = two_node_rig();
        let t = tm1.begin(Tid::NULL).unwrap();
        // Decision in flight at node 1 (phase Running, no durable outcome):
        // an Inquire must NOT draw presumed abort — the commit record may
        // be about to land.
        t2.send(NodeId(1), CommitMsg::Inquire { tid: t, from: NodeId(2) });
        assert!(
            t1.sent.lock().is_empty(),
            "pending transaction answered an Inquire; presumed abort only \
             applies when the outcome provably was never logged"
        );
        // Once durably aborted, the same Inquire gets an authoritative answer.
        tm1.abort(t).unwrap();
        t2.send(NodeId(1), CommitMsg::Inquire { tid: t, from: NodeId(2) });
        assert!(t1
            .sent
            .lock()
            .iter()
            .any(|(to, m)| *to == NodeId(2) && matches!(m, CommitMsg::Abort { .. })));
    }

    #[test]
    fn cooperative_termination_resolves_via_peer_answer() {
        // Nodes 2 and 3 were fellow participants under coordinator node 1,
        // which is unreachable (absent from the loopback peer map). Node 3
        // durably knows t committed; node 2 is in doubt. The outcome-query
        // broadcast must end node 2's doubt without the coordinator.
        let (tm2, _rm2, _p2) = make_tm(NodeId(2));
        let (tm3, _rm3, _p3) = make_tm(NodeId(3));
        let (_t2, _t3) = Loopback::pair(&tm2, &tm3);
        tm2.set_cooperative_termination(true);
        let t = Tid { node: NodeId(1), incarnation: 1, seq: 7 };
        tm3.outcomes.lock().insert(t, true);
        let part2 = Arc::new(TracePart::default());
        tm2.enlist(t, "s2", part2.clone());
        {
            let mut inner = tm2.inner.lock();
            inner.get_mut(&t).unwrap().phase = TxPhase::Prepared;
        }
        tm2.load_recovery(&[], &[], &[(t, NodeId(1))]);
        for _ in 0..200 {
            if tm2.phase(t) == Some(TxPhase::Committed) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(tm2.phase(t), Some(TxPhase::Committed));
        assert!(part2.log.lock().iter().any(|l| l.contains("finish") && l.contains("true")));
        assert!(tm2.in_doubt_tids().is_empty());
    }

    #[test]
    fn outcome_query_for_unknown_tid_stays_silent() {
        let (_tm1, _tm2, t1, t2, _rm1, _rm2) = two_node_rig();
        let ghost = Tid { node: NodeId(9), incarnation: 1, seq: 1 };
        t2.send(NodeId(1), CommitMsg::OutcomeQuery { tid: ghost, from: NodeId(2) });
        assert!(
            t1.sent.lock().is_empty(),
            "a peer without durable knowledge must not answer an outcome query"
        );
    }

    #[test]
    fn suspected_child_aborts_running_coordinator_transaction() {
        let (tm1, _tm2, t1, _t2, rm1, _rm2) = two_node_rig();
        tm1.set_cooperative_termination(true);
        t1.set_children(vec![NodeId(2)]);
        let t = tm1.begin(Tid::NULL).unwrap();
        let part = Arc::new(TracePart::default());
        tm1.enlist(t, "s1", part);
        // The failure detector reports node 2 (a spanning-tree child of t)
        // unreachable before prepare: the coordinator aborts durably now.
        tm1.peer_suspected(NodeId(2));
        for _ in 0..100 {
            if tm1.phase(t) == Some(TxPhase::Aborted) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(tm1.phase(t), Some(TxPhase::Aborted));
        assert!(rm1
            .log()
            .all_entries()
            .iter()
            .any(|e| matches!(e.record, tabs_wal::LogRecord::Abort { .. })));
    }

    #[test]
    fn suspected_coordinator_starts_resolution_for_in_doubt() {
        // tm2 in doubt under coordinator node 3 (reachable via loopback):
        // the suspicion callback alone must pull the outcome.
        let (tm2, _rm2, _p2) = make_tm(NodeId(2));
        let (tm3, _rm3, _p3) = make_tm(NodeId(3));
        let (_t2, _t3) = Loopback::pair(&tm2, &tm3);
        tm2.set_cooperative_termination(true);
        let t = Tid { node: NodeId(3), incarnation: 1, seq: 4 };
        tm3.outcomes.lock().insert(t, false);
        let part2 = Arc::new(TracePart::default());
        tm2.enlist(t, "s2", part2.clone());
        {
            let mut inner = tm2.inner.lock();
            let info = inner.get_mut(&t).unwrap();
            info.phase = TxPhase::Prepared;
            info.remote_parent = Some(NodeId(3));
        }
        tm2.peer_suspected(NodeId(3));
        for _ in 0..200 {
            if tm2.phase(t) == Some(TxPhase::Aborted) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(tm2.phase(t), Some(TxPhase::Aborted));
        assert!(part2.log.lock().iter().any(|l| l.contains("finish") && l.contains("false")));
    }
}
