//! ASCII renderers that regenerate every table of the paper's §5.

use std::collections::BTreeMap;

use tabs_kernel::PrimitiveOp;

use crate::bench::{BenchResult, CommitClass};
use crate::cost::{ACHIEVABLE, PERQ_T2};
use crate::model::Projection;
use crate::paper;

fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        String::new()
    } else if (v - v.round()).abs() < 0.05 {
        format!("{:.0}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Table 5-1: primitive operation times.
pub fn table_5_1() -> String {
    let mut out = String::new();
    out.push_str("Table 5-1: Primitive Operation Times (milliseconds)\n");
    out.push_str(&format!("{:<32} {:>12}\n", "Primitive", "Perq T2 (ms)"));
    for op in PrimitiveOp::ALL {
        out.push_str(&format!("{:<32} {:>12}\n", op.label(), fmt_f(PERQ_T2.cost(op))));
    }
    out
}

/// Table 5-5: achievable primitive operation times.
pub fn table_5_5() -> String {
    let mut out = String::new();
    out.push_str("Table 5-5: Achievable Primitive Operation Times (milliseconds)\n");
    out.push_str(&format!("{:<32} {:>10} {:>12}\n", "Primitive", "Perq (ms)", "Achievable"));
    for op in PrimitiveOp::ALL {
        out.push_str(&format!(
            "{:<32} {:>10} {:>12}\n",
            op.label(),
            fmt_f(PERQ_T2.cost(op)),
            fmt_f(ACHIEVABLE.cost(op))
        ));
    }
    out
}

/// Table 5-2: pre-commit primitive counts — measured from the instrumented
/// run, with the paper's published counts alongside.
pub fn table_5_2(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("Table 5-2: Pre-Commit Primitive Counts (per transaction)\n");
    out.push_str(
        "measured = this implementation; (paper) = published counts, ? = illegible scan\n\n",
    );
    out.push_str(&format!(
        "{:<34} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
        "Benchmark", "DS Call", "Rem DS", "Small Msg", "Large Msg", "Seq Read", "Rand I/O"
    ));
    for r in results {
        let paper_row = paper::TABLE_5_2.iter().find(|p| p.name == r.name);
        let m = r.pre_counts;
        let cols = [
            m[PrimitiveOp::DataServerCall as usize],
            m[PrimitiveOp::InterNodeDataServerCall as usize],
            m[PrimitiveOp::SmallContiguousMessage as usize],
            m[PrimitiveOp::LargeContiguousMessage as usize],
            m[PrimitiveOp::SequentialRead as usize],
            m[PrimitiveOp::RandomAccessPagedIo as usize],
        ];
        let mut line = format!("{:<34}", r.name);
        for (i, c) in cols.iter().enumerate() {
            let p = paper_row.and_then(|pr| pr.counts[i]);
            let cell = match p {
                Some(pv) => format!("{}({})", fmt_f(*c), fmt_f(pv)),
                None => fmt_f(*c),
            };
            line.push_str(&format!(" {cell:>11}"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Table 5-3: commit primitive counts per commit-protocol class.
pub fn table_5_3(results: &[BenchResult]) -> String {
    // Representative benchmark per commit class: the simplest one.
    let mut per_class: BTreeMap<&'static str, [f64; 9]> = BTreeMap::new();
    let order = [
        CommitClass::OneNodeRead,
        CommitClass::OneNodeWrite,
        CommitClass::TwoNodeRead,
        CommitClass::TwoNodeWrite,
        CommitClass::ThreeNodeRead,
        CommitClass::ThreeNodeWrite,
    ];
    for class in order {
        if let Some(r) = results
            .iter()
            .find(|r| r.commit_class == class && !r.name.contains('5') && !r.name.contains("Seq"))
        {
            per_class.insert(class.label(), r.commit_counts);
        }
    }
    let mut out = String::new();
    out.push_str("Table 5-3: Commit Primitive Counts (per transaction)\n");
    out.push_str(
        "measured = this implementation; (paper) = published counts, ? = illegible scan\n\n",
    );
    out.push_str(&format!(
        "{:<22} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
        "Commit Protocol", "Datagram", "Small Msg", "Large Msg", "Pointer", "Stable Wr"
    ));
    for class in order {
        let label = class.label();
        let Some(m) = per_class.get(label) else { continue };
        let paper_row = paper::TABLE_5_3.iter().find(|p| p.name == label);
        let cols = [
            m[PrimitiveOp::Datagram as usize],
            m[PrimitiveOp::SmallContiguousMessage as usize],
            m[PrimitiveOp::LargeContiguousMessage as usize],
            m[PrimitiveOp::PointerMessage as usize],
            m[PrimitiveOp::StableStorageWrite as usize],
        ];
        let mut line = format!("{label:<22}");
        for (i, c) in cols.iter().enumerate() {
            let p = paper_row.and_then(|pr| pr.counts[i]);
            let cell = match p {
                Some(pv) => format!("{}({})", fmt_f(*c), fmt_f(pv)),
                None => fmt_f(*c),
            };
            line.push_str(&format!(" {cell:>11}"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Table 5-4: benchmark times — our measured microseconds, our
/// model-predicted Perq milliseconds (counts × Table 5-1), the paper's
/// published columns, and the two projections applied to our counts.
pub fn table_5_4(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("Table 5-4: Benchmark Times\n");
    out.push_str("ours-us    = measured elapsed on this implementation (microseconds)\n");
    out.push_str("pred-ours  = our measured counts x Table 5-1 Perq times (ms)\n");
    out.push_str("pred/elaps = the paper's published predicted / elapsed times (ms)\n");
    out.push_str("impr/new   = projections from our counts (ms) vs the paper's (ms)\n\n");
    out.push_str(&format!(
        "{:<34} {:>8} {:>9} {:>9} {:>9} {:>13} {:>13}\n",
        "Benchmark", "ours-us", "pred-ours", "pred", "elapsed", "improved", "new-prims"
    ));
    for r in results {
        let p = Projection::of(r);
        let pr = paper::TABLE_5_4.iter().find(|x| x.name == r.name);
        let (ppred, pelapsed, pimpr, pnew) = pr
            .map(|x| (x.predicted, x.elapsed, x.improved, x.new_primitives))
            .unwrap_or((0.0, 0.0, 0.0, 0.0));
        out.push_str(&format!(
            "{:<34} {:>8.0} {:>9.0} {:>9.0} {:>9.0} {:>6.0}({:>4.0}) {:>6.0}({:>4.0})\n",
            r.name,
            r.elapsed_us,
            p.predicted_ms,
            ppred,
            pelapsed,
            p.improved_ms,
            pimpr,
            p.new_primitives_ms,
            pnew,
        ));
    }
    out
}

/// Shape comparison: the latency ratios that must reproduce regardless of
/// absolute hardware speed.
pub fn shape_report(results: &[BenchResult]) -> String {
    let get = |name: &str| results.iter().find(|r| r.name == name);
    let mut out = String::new();
    out.push_str("Shape comparison (ratios; paper from Table 5-4 elapsed, ours from both\n");
    out.push_str("measured microseconds and modelled milliseconds)\n\n");
    out.push_str(&format!("{:<44} {:>7} {:>9} {:>9}\n", "Ratio", "paper", "ours-us", "ours-ms"));
    let mut row = |label: &str, a: &str, b: &str, paper_ratio: f64| {
        if let (Some(x), Some(y)) = (get(a), get(b)) {
            let us = x.elapsed_us / y.elapsed_us;
            let ms = Projection::of(x).predicted_ms / Projection::of(y).predicted_ms;
            out.push_str(&format!("{:<44} {:>7.2} {:>9.2} {:>9.2}\n", label, paper_ratio, us, ms));
        }
    };
    row(
        "write / read (local, no paging)",
        "1 Local Write, No Paging",
        "1 Local Read, No Paging",
        247.0 / 110.0,
    );
    row(
        "5 reads / 1 read (local)",
        "5 Local Read, No Paging",
        "1 Local Read, No Paging",
        217.0 / 110.0,
    );
    row(
        "5 writes / 1 write (local)",
        "5 Local Write, No Paging",
        "1 Local Write, No Paging",
        467.0 / 247.0,
    );
    row(
        "remote read / local read",
        "1 Lcl Rd, 1 Rem Rd, No Paging",
        "1 Local Read, No Paging",
        469.0 / 110.0,
    );
    row(
        "remote write / local write",
        "1 Lcl Wr, 1 Rem Wr, No Paging",
        "1 Local Write, No Paging",
        989.0 / 247.0,
    );
    row(
        "3-node read / 2-node read",
        "1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP",
        "1 Lcl Rd, 1 Rem Rd, No Paging",
        621.0 / 469.0,
    );
    row(
        "3-node write / 2-node write",
        "1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP",
        "1 Lcl Wr, 1 Rem Wr, No Paging",
        1200.0 / 989.0,
    );
    row(
        "seq-paging read / resident read",
        "1 Local Read, Seq. Paging",
        "1 Local Read, No Paging",
        126.0 / 110.0,
    );
    row(
        "random-paging read / resident read",
        "1 Local Read, Random Paging",
        "1 Local Read, No Paging",
        140.0 / 110.0,
    );
    out
}

/// The §5.2 accounting narrative, recomputed from our counts.
pub fn accounting(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("Latency accounting (the Section 5.2 narrative, over our counts)\n\n");
    if let (Some(r), Some(w)) = (
        results.iter().find(|r| r.name == "1 Local Read, No Paging"),
        results.iter().find(|r| r.name == "1 Local Write, No Paging"),
    ) {
        let pr = Projection::of(r).predicted_ms;
        let pw = Projection::of(w).predicted_ms;
        out.push_str(&format!(
            "modelled simple read:  {:.1} ms   (paper predicted 53, measured 110)\n",
            pr
        ));
        out.push_str(&format!(
            "modelled simple write: {:.1} ms   (paper predicted 156, measured 247)\n",
            pw
        ));
        out.push_str(&format!(
            "write - read difference: {:.1} ms  (paper: 137 ms, of which 78 ms is the\n",
            pw - pr
        ));
        let stable = w.total_counts()[PrimitiveOp::StableStorageWrite as usize]
            * PERQ_T2.cost(PrimitiveOp::StableStorageWrite);
        out.push_str(&format!(
            "stable-storage force; ours attributes {:.1} ms to the force)\n",
            stable
        ));
    }
    out.push('\n');
    out.push_str("Section 7 compositions (modelled):\n");
    for (label, ms) in crate::model::conclusions_model() {
        out.push_str(&format!("  {:<48} {:>8.0} ms\n", label, ms));
    }
    out
}

/// Every table in one report.
pub fn full_report(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str(&table_5_1());
    out.push('\n');
    out.push_str(&table_5_2(results));
    out.push('\n');
    out.push_str(&table_5_3(results));
    out.push('\n');
    out.push_str(&table_5_4(results));
    out.push('\n');
    out.push_str(&table_5_5());
    out.push('\n');
    out.push_str(&shape_report(results));
    out.push('\n');
    out.push_str(&accounting(results));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table_5_1();
        assert!(t1.contains("Data Server Call"));
        assert!(t1.contains("26.1"));
        let t5 = table_5_5();
        assert!(t5.contains("Achievable"));
        assert!(t5.contains("2.5"));
    }

    #[test]
    fn dynamic_tables_render_from_fake_results() {
        let mut counts = [0.0; 9];
        counts[PrimitiveOp::DataServerCall as usize] = 1.0;
        counts[PrimitiveOp::SmallContiguousMessage as usize] = 4.0;
        let fake: Vec<BenchResult> = crate::bench::benchmarks()
            .iter()
            .map(|b| BenchResult {
                name: b.name,
                commit_class: b.commit_class,
                iters: 1,
                elapsed_us: 100.0,
                pre_counts: counts,
                commit_counts: [0.0; 9],
            })
            .collect();
        let report = full_report(&fake);
        assert!(report.contains("Table 5-2"));
        assert!(report.contains("Table 5-3"));
        assert!(report.contains("Table 5-4"));
        assert!(report.contains("1 Local Read, No Paging"));
        assert!(report.contains("Shape comparison"));
    }
}
