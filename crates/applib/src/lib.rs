//! The transaction management library (§3.1.2, Table 3-2).
//!
//! "The routines in the transaction management library provide a standard
//! interface to transaction management functions. `BeginTransaction`
//! creates a subtransaction of the specified transaction. To create a new
//! top-level transaction, a special null TransactionID is given as the
//! argument. `EndTransaction` and `AbortTransaction` initiate commit and
//! abort of the specified transaction, respectively. The
//! `TransactionIsAborted` exception is raised in the application process if
//! the specified transaction has been aborted by some other process."

use std::sync::Arc;

use tabs_kernel::{Kernel, SendRight, Tid};
use tabs_proto::{RpcError, ServerError};
use tabs_tm::{TmError, TransactionManager};

/// Errors surfaced to applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// The `TransactionIsAborted` notification (Table 3-2).
    TransactionIsAborted(Tid),
    /// Transaction-manager failure.
    Tm(String),
    /// A data-server call failed.
    Rpc(String),
    /// A data-server call failed with a *retryable* server error
    /// ([`ServerError::is_retryable`]): the operation was provably never
    /// applied, and the structured error is preserved so routing layers
    /// can react (e.g. refresh a shard map on
    /// [`ServerError::WrongShard`], re-resolve a server on
    /// [`ServerError::Unavailable`]) instead of string-matching.
    Server(ServerError),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::TransactionIsAborted(t) => write!(f, "transaction {t} is aborted"),
            AppError::Tm(e) => write!(f, "transaction manager: {e}"),
            AppError::Rpc(e) => write!(f, "rpc: {e}"),
            AppError::Server(e) => write!(f, "rpc: {e}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<TmError> for AppError {
    fn from(e: TmError) -> Self {
        match e {
            TmError::Aborted(t) => AppError::TransactionIsAborted(t),
            other => AppError::Tm(other.to_string()),
        }
    }
}

impl From<ServerError> for AppError {
    fn from(e: ServerError) -> Self {
        if e.is_retryable() {
            AppError::Server(e)
        } else {
            AppError::Rpc(e.to_string())
        }
    }
}

impl From<RpcError> for AppError {
    fn from(e: RpcError) -> Self {
        match e {
            RpcError::Server(ServerError::Aborted(w)) => {
                AppError::Rpc(format!("transaction aborted: {w}"))
            }
            RpcError::Server(e) if e.is_retryable() => AppError::Server(e),
            other => AppError::Rpc(other.to_string()),
        }
    }
}

/// How `EndTransaction` resolved the transaction (Table 3-2 returns a
/// Boolean; this is its self-describing form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommitOutcome {
    /// The transaction committed; its effects are durable.
    Committed,
    /// The transaction was (or had to be) aborted; its effects are undone.
    Aborted,
}

impl CommitOutcome {
    /// Whether the transaction committed.
    pub fn is_committed(self) -> bool {
        matches!(self, CommitOutcome::Committed)
    }

    /// Whether the transaction aborted.
    pub fn is_aborted(self) -> bool {
        matches!(self, CommitOutcome::Aborted)
    }
}

impl std::fmt::Display for CommitOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitOutcome::Committed => write!(f, "committed"),
            CommitOutcome::Aborted => write!(f, "aborted"),
        }
    }
}

/// An application's handle onto one node's TABS facilities.
#[derive(Clone)]
pub struct AppHandle {
    kernel: Kernel,
    tm: Arc<TransactionManager>,
}

impl std::fmt::Debug for AppHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppHandle").field("node", &self.kernel.node()).finish()
    }
}

impl AppHandle {
    /// Creates an application handle for a node.
    pub fn new(kernel: Kernel, tm: Arc<TransactionManager>) -> Self {
        Self { kernel, tm }
    }

    /// The node's kernel (for direct RPC).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// `BeginTransaction(TransactionID) returns (NewTransactionID)`.
    pub fn begin_transaction(&self, parent: Tid) -> Result<Tid, AppError> {
        Ok(self.tm.begin(parent)?)
    }

    /// `EndTransaction(TransactionID) returns (Boolean)`. The Boolean of
    /// Table 3-2 is surfaced as a [`CommitOutcome`]; errors remain errors.
    pub fn end_transaction(&self, tid: Tid) -> Result<CommitOutcome, AppError> {
        Ok(if self.tm.end(tid)? { CommitOutcome::Committed } else { CommitOutcome::Aborted })
    }

    /// `AbortTransaction(TransactionID)`.
    pub fn abort_transaction(&self, tid: Tid) -> Result<(), AppError> {
        Ok(self.tm.abort(tid)?)
    }

    /// The `TransactionIsAborted` test (the library's exception surfaces
    /// as an error from calls; this polls the state directly).
    pub fn transaction_is_aborted(&self, tid: Tid) -> bool {
        self.tm.is_aborted(tid)
    }

    /// Calls a data-server operation within `tid` (the Matchmaker path).
    pub fn call(
        &self,
        server: &SendRight,
        tid: Tid,
        opcode: u32,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, AppError> {
        tabs_proto::call(&self.kernel, server, tid, opcode, args).map_err(|e| match e {
            RpcError::Server(ServerError::Aborted(_)) => AppError::TransactionIsAborted(tid),
            RpcError::Server(e) if e.is_retryable() => AppError::Server(e),
            other => AppError::Rpc(other.to_string()),
        })
    }

    /// Convenience: runs `f` in a new top-level transaction, committing on
    /// success and aborting on failure.
    pub fn run<R>(&self, f: impl FnOnce(Tid) -> Result<R, AppError>) -> Result<R, AppError> {
        let tid = self.begin_transaction(Tid::NULL)?;
        match f(tid) {
            Ok(r) => {
                if self.end_transaction(tid)?.is_committed() {
                    Ok(r)
                } else {
                    Err(AppError::TransactionIsAborted(tid))
                }
            }
            Err(e) => {
                let _ = self.abort_transaction(tid);
                Err(e)
            }
        }
    }

    /// Like [`AppHandle::run`] but retries aborted transactions up to
    /// `attempts` times (lock time-outs resolve deadlocks by abort, so
    /// retry is the standard recovery).
    pub fn run_with_retries<R>(
        &self,
        attempts: usize,
        mut f: impl FnMut(Tid) -> Result<R, AppError>,
    ) -> Result<R, AppError> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match self.run(&mut f) {
                Ok(r) => return Ok(r),
                Err(e @ AppError::TransactionIsAborted(_))
                | Err(e @ AppError::Rpc(_))
                | Err(e @ AppError::Server(_)) => {
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(AppError::Tm("no attempts".into())))
    }
}
