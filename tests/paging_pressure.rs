//! Stress: transactions over data far larger than the buffer pool, with
//! checkpoints, log reclamation and crashes — the §5 paging regime plus
//! the §3.2.2 log-space machinery, end to end.

use tabs_core::{Cluster, ClusterConfig, NodeId};
use tabs_kernel::PrimitiveOp;
use tabs_servers::{IntArrayClient, IntArrayServer};

const CELLS_PER_PAGE: u64 = 64;

#[test]
fn writes_across_a_thrashing_pool_recover_exactly() {
    // 16-frame pool, 64-page array: every page write evicts another dirty
    // page through the WAL gate (log forced before each write-back).
    let cluster = Cluster::with_config(ClusterConfig::default().pool_pages(16));
    let node = cluster.boot_node(NodeId(1));
    let arr = IntArrayServer::spawn(&node, "big", 64 * CELLS_PER_PAGE).unwrap();
    node.recover().unwrap();
    let app = node.app();
    let client = IntArrayClient::new(app.clone(), arr.send_right());

    // One committed value on every page.
    for p in 0..64u64 {
        let v = (p * 31 + 7) as i64;
        app.run(|t| client.set(t, p * CELLS_PER_PAGE, v)).unwrap();
    }
    let stats = node.pool.stats();
    assert!(stats.evictions > 30, "the pool thrashed: {stats:?}");
    // Every dirty eviction honoured the WAL protocol (force before write).
    assert!(node.kernel.perf().get(PrimitiveOp::StableStorageWrite) > 0);

    // Crash with most pages only on disk via evictions, others only in
    // the log; recovery must reassemble all 64.
    drop(arr);
    node.crash();
    let node = cluster.boot_node(NodeId(1));
    let arr = IntArrayServer::spawn(&node, "big", 64 * CELLS_PER_PAGE).unwrap();
    node.recover().unwrap();
    let app = node.app();
    let client = IntArrayClient::new(app.clone(), arr.send_right());
    app.run(|t| {
        for p in 0..64u64 {
            assert_eq!(client.get(t, p * CELLS_PER_PAGE)?, (p * 31 + 7) as i64);
        }
        Ok(())
    })
    .unwrap();
    node.shutdown();
}

#[test]
fn near_full_log_triggers_reclamation_automatically() {
    // A small log device: maybe_reclaim fires once usage crosses the
    // threshold, forcing dirty pages and truncating the prefix ("Log
    // reclamation may force pages back to disk before they would
    // otherwise be written", §3.2.2).
    // 32 KiB log.
    let cluster = Cluster::with_config(ClusterConfig::default().log_capacity(32 << 10));
    let node = cluster.boot_node(NodeId(1));
    let arr = IntArrayServer::spawn(&node, "hot", 256).unwrap();
    node.recover().unwrap();
    let app = node.app();
    let client = IntArrayClient::new(app.clone(), arr.send_right());

    let mut reclaimed_total = 0usize;
    for round in 0..400i64 {
        app.run(|t| client.set(t, (round % 256) as u64, round)).unwrap();
        reclaimed_total += node.rm.maybe_reclaim(None).unwrap();
        let (used, cap) = node.rm.log().usage();
        assert!(used <= cap, "log never exceeds the device ({used}/{cap})");
    }
    assert!(reclaimed_total > 0, "reclamation actually ran");

    // The data is still exactly right after a crash.
    drop(arr);
    node.crash();
    let node = cluster.boot_node(NodeId(1));
    let arr = IntArrayServer::spawn(&node, "hot", 256).unwrap();
    node.recover().unwrap();
    let app = node.app();
    let client = IntArrayClient::new(app.clone(), arr.send_right());
    app.run(|t| {
        // Cell c last received value: the largest round r < 400 with
        // r % 256 == c, i.e. r = c + 256 when c < 144, else r = c.
        for c in 0..256u64 {
            let expect = if c < 144 { c as i64 + 256 } else { c as i64 };
            assert_eq!(client.get(t, c)?, expect, "cell {c}");
        }
        Ok(())
    })
    .unwrap();
    node.shutdown();
}

#[test]
fn checkpoint_bounds_recovery_scan() {
    // Identical workloads; one takes a checkpoint + reclamation at the
    // end. Its post-crash recovery scans far fewer records.
    let scan_len = |do_checkpoint: bool| -> usize {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let arr = IntArrayServer::spawn(&node, "w", 64).unwrap();
        node.recover().unwrap();
        let app = node.app();
        let client = IntArrayClient::new(app.clone(), arr.send_right());
        for i in 0..100i64 {
            app.run(|t| client.set(t, (i % 64) as u64, i)).unwrap();
        }
        if do_checkpoint {
            node.checkpoint().unwrap();
            node.rm.reclaim(None).unwrap();
        }
        drop(arr);
        node.crash();
        let node = cluster.boot_node(NodeId(1));
        let _arr = IntArrayServer::spawn(&node, "w", 64).unwrap();
        let report = node.recover().unwrap();
        node.shutdown();
        report.records_scanned
    };
    let without = scan_len(false);
    let with = scan_len(true);
    assert!(
        with * 5 < without,
        "checkpointing shrank the recovery scan: {with} vs {without} records"
    );
}
