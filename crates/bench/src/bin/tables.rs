//! Regenerates every table of the paper's §5 evaluation.
//!
//! Usage:
//!
//! ```text
//! tables [table5_1|table5_2|table5_3|table5_4|table5_5|shapes|accounting|all] [--iters N] [--warmup N]
//! tables trace
//! tables chaos [--seed N]
//! tables contention [--iters N]
//! tables groupcommit [--iters N] [--quick]
//! tables partition [--seed N] [--quick]
//! ```
//!
//! `tables trace` boots a two-node cluster with transaction tracing
//! enabled, runs one distributed write transaction, and renders its
//! per-node swimlane timeline: all four two-phase-commit phases
//! (prepare, vote, decision, acknowledgement) plus every log force.
//! It then manufactures a cross-node deadlock and renders the victim's
//! swimlane: the edge-chasing probes and the victim broadcast appear
//! alongside the lock waits they resolved.
//!
//! `tables contention` measures deadlock-resolution latency (p50/p95)
//! and victim throughput on a two-node opposite-order lock workload,
//! side by side: the paper's time-out-only policy versus the
//! probe-based detector. `--iters` sets rounds per mode (default 40).
//!
//! `tables groupcommit` measures stable-storage forces per committed
//! transaction at 8 concurrent committers, group commit on versus off,
//! and fails (exit 1) unless batching cuts forces/commit below 0.5 and
//! at least 4× under the seed path. `--quick` shrinks the rounds for CI.
//!
//! `tables partition` measures in-doubt resolution latency after a
//! coordinator crash mid-commit (the commit record durable, the decision
//! never sent), cooperative termination versus the retransmit-timeout
//! baseline, and fails (exit 1) unless the cooperative p50 is under 25%
//! of the baseline's. `--quick` shrinks the rounds for CI.
//!
//! `tables chaos` runs the deterministic fault-injection sweeps from
//! `tabs-chaos`: every registered crash point is armed over the bank
//! workloads, each scenario recovers and is checked against the
//! invariant oracle. Any failure prints `seed=<N> crash_point=<name>`
//! for exact replay.
//!
//! Tables 5-2, 5-3, 5-4, the shape report and the accounting section are
//! *measured*: a three-node cluster is booted and the fourteen benchmark
//! transactions run against it with instrumented primitive counters.

use tabs_perf::{bench, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut iters = 40u32;
    let mut warmup = 8u32;
    let mut seed = 0xC4A0_05EDu64;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N");
            }
            "--quick" => quick = true,
            "--warmup" => {
                warmup = it.next().and_then(|v| v.parse().ok()).expect("--warmup N");
            }
            "--seed" => {
                seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N");
            }
            other => which = other.to_string(),
        }
    }

    // The static tables and the trace demo need no measurement run.
    match which.as_str() {
        "table5_1" => {
            print!("{}", tables::table_5_1());
            return;
        }
        "table5_5" => {
            print!("{}", tables::table_5_5());
            return;
        }
        "trace" => {
            run_trace();
            return;
        }
        "chaos" => {
            run_chaos(seed);
            return;
        }
        "contention" => {
            run_contention(iters);
            return;
        }
        "groupcommit" => {
            run_groupcommit(iters, quick);
            return;
        }
        "partition" => {
            run_partition(seed, quick);
            return;
        }
        _ => {}
    }

    eprintln!("booting three-node cluster; {iters} iterations per benchmark …");
    let results = bench::run_all(warmup, iters);
    match which.as_str() {
        "table5_2" => print!("{}", tables::table_5_2(&results)),
        "table5_3" => print!("{}", tables::table_5_3(&results)),
        "table5_4" => print!("{}", tables::table_5_4(&results)),
        "shapes" => print!("{}", tables::shape_report(&results)),
        "accounting" => print!("{}", tables::accounting(&results)),
        _ => print!("{}", tables::full_report(&results)),
    }
}

/// Boots a traced two-node cluster, commits one distributed write, and
/// renders the transaction's swimlane timeline plus the coordinator's
/// metric registry.
fn run_trace() {
    use std::time::Duration;
    use tabs_core::prelude::*;
    use tabs_servers::{IntArrayClient, IntArrayServer};

    eprintln!("booting two-node traced cluster …");
    let cluster =
        Cluster::with_config(ClusterConfig::default().trace(true).deadlock_detection(true));
    let n1 = cluster.boot_node(NodeId(1));
    let n2 = cluster.boot_node(NodeId(2));
    let a1 = IntArrayServer::spawn(&n1, "arr-1", 64).expect("local array");
    let a2 = IntArrayServer::spawn(&n2, "arr-2", 64).expect("remote array");
    n1.recover().expect("recover node 1");
    n2.recover().expect("recover node 2");

    let (remote_port, _) = n1
        .resolve("arr-2", 1, Duration::from_secs(2))
        .into_iter()
        .next()
        .expect("remote array resolvable");
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let remote = IntArrayClient::new(app.clone(), remote_port);

    let tid = app.begin_transaction(Tid::NULL).expect("begin");
    local.set(tid, 0, 17).expect("local write");
    remote.set(tid, 0, 34).expect("remote write");
    let outcome = app.end_transaction(tid).expect("end");
    assert!(outcome.is_committed(), "distributed write must commit");

    // Commit chases phase-2 acks synchronously, so by now the timeline
    // holds the whole protocol exchange.
    print!("{}", cluster.timeline().render_swimlane(tid));

    // Second act: a manufactured cross-node deadlock, so the detector's
    // probe exchange and victim broadcast show up in a swimlane too.
    eprintln!();
    eprintln!("manufacturing a cross-node deadlock for the detector …");
    let app2 = n2.app();
    let c2_local = IntArrayClient::new(app2.clone(), a2.send_right());
    let (r1_port, _) = n2
        .resolve("arr-1", 1, Duration::from_secs(2))
        .into_iter()
        .next()
        .expect("arr-1 resolvable from node 2");
    let c2_remote = IntArrayClient::new(app2.clone(), r1_port);

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let side = |app: tabs_core::AppHandle,
                first: IntArrayClient,
                second: IntArrayClient,
                barrier: std::sync::Arc<std::sync::Barrier>| {
        std::thread::spawn(move || {
            let t = app.begin_transaction(Tid::NULL).expect("begin");
            first.add(t, 1, 1).expect("first lock");
            barrier.wait();
            match second.add(t, 1, 1) {
                Ok(_) => {
                    app.end_transaction(t).expect("end");
                    (t, false)
                }
                Err(_) => {
                    let _ = app.abort_transaction(t);
                    (t, true)
                }
            }
        })
    };
    let h1 = side(app.clone(), local, remote, std::sync::Arc::clone(&barrier));
    let h2 = side(app2, c2_local, c2_remote, barrier);
    let (t1, dead1) = h1.join().expect("side 1");
    let (t2, dead2) = h2.join().expect("side 2");
    assert!(dead1 ^ dead2, "exactly one side must be the deadlock victim");
    let (victim, survivor) = if dead1 { (t1, t2) } else { (t2, t1) };
    // Probes are traced under the waiter whose scan initiated them, so
    // the exchange may land in either lane; render both.
    eprintln!("victim {victim} — its swimlane (victim broadcast, abort):");
    print!("{}", cluster.timeline().render_swimlane(victim));
    eprintln!();
    eprintln!("survivor {survivor} — its swimlane (probes, resumed lock, commit):");
    print!("{}", cluster.timeline().render_swimlane(survivor));

    eprintln!();
    eprintln!("node 1 metrics after the traced transactions:");
    eprint!("{}", cluster.metrics(NodeId(1)).render());

    n1.shutdown();
    n2.shutdown();

    // Third act: a partition on a heartbeat cluster — suspicion, heal,
    // and a node rebooting into a fresh incarnation. The failure
    // detector traces outside any transaction, so its swimlane rides the
    // null-transaction lane.
    eprintln!();
    eprintln!("partitioning a heartbeat cluster: suspicion, heal, rejoin …");
    let hb = tabs_core::HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspect_after: 3,
        probe_cap: Duration::from_millis(100),
    };
    let pc = Cluster::with_config(ClusterConfig::default().trace(true).heartbeat(hb));
    let p1 = pc.boot_node(NodeId(1));
    let p2 = pc.boot_node(NodeId(2));
    p1.recover().expect("recover partition-demo node 1");
    p2.recover().expect("recover partition-demo node 2");

    let reaches = |node: &tabs_core::Node, peer: NodeId, up: bool, what: &str| {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !node.reachability().iter().any(|&(n, u)| n == peer && u == up) {
            assert!(std::time::Instant::now() < deadline, "never observed {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    // Let heartbeats flow first: a peer never heard from is not watched,
    // so there would be nothing to suspect.
    reaches(&p1, NodeId(2), true, "initial heartbeats");
    pc.network().partition(NodeId(1), NodeId(2));
    reaches(&p1, NodeId(2), false, "suspicion of the partitioned peer");
    pc.network().heal(NodeId(1), NodeId(2));
    reaches(&p1, NodeId(2), true, "reachability after heal");

    // Node 2 reboots on its durable disks: incarnation bump plus rejoin.
    p2.crash();
    let p2b = pc.boot_node(NodeId(2));
    p2b.recover().expect("recover rejoined node 2");

    print!("{}", pc.timeline().render_swimlane(Tid::NULL));
    p1.shutdown();
    p2b.shutdown();
}

/// Runs the contention microbenchmark in both resolution modes and
/// prints the comparison table.
fn run_contention(rounds: u32) {
    use std::time::Duration;

    eprintln!("contention microbenchmark: {rounds} manufactured deadlocks per mode …");
    print!("{}", tabs_perf::contention::compare(rounds, Duration::from_millis(400)));
}

/// Runs the group-commit microbenchmark, prints the comparison table and
/// enforces the amortization gate: batched forces/commit below 0.5 and a
/// ≥ 4× reduction versus the unbatched seed path at 8 committers.
fn run_groupcommit(rounds: u32, quick: bool) {
    const COMMITTERS: u32 = 8;
    let rounds = if quick { 5 } else { rounds };
    eprintln!("group-commit microbenchmark: {COMMITTERS} committers x {rounds} rounds per mode …");
    let (unbatched, batched) = tabs_perf::groupcommit::compare(COMMITTERS, rounds);
    print!("{}", tabs_perf::groupcommit::render(&[unbatched.clone(), batched.clone()]));
    let ratio = unbatched.forces_per_commit() / batched.forces_per_commit().max(1e-9);
    println!("force reduction: {ratio:.1}x");
    if batched.forces_per_commit() >= 0.5 {
        eprintln!(
            "groupcommit FAILED: batched mode paid {:.3} forces/commit (gate: < 0.5)",
            batched.forces_per_commit()
        );
        std::process::exit(1);
    }
    if ratio < 4.0 {
        eprintln!("groupcommit FAILED: only {ratio:.1}x force reduction (gate: >= 4x)");
        std::process::exit(1);
    }
}

/// Runs the partition-recovery microbenchmark in both modes and enforces
/// the acceptance gate: cooperative in-doubt resolution p50 under 25% of
/// the retransmit-timeout-only baseline's.
fn run_partition(seed: u64, quick: bool) {
    let iters = if quick { 2 } else { 5 };
    eprintln!(
        "partition microbenchmark: {iters} coordinator-crash/rejoin runs per mode, seed={seed} …"
    );
    let (baseline, coop) = match tabs_perf::partition::compare(iters, seed) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("partition FAILED: {e}");
            eprintln!("reproduce with: tables partition --seed {seed}");
            std::process::exit(1);
        }
    };
    print!("{}", tabs_perf::partition::render(&[baseline.clone(), coop.clone()]));
    if coop.p50() * 4 >= baseline.p50() {
        eprintln!(
            "partition FAILED: cooperative p50 {:?} is not under 25% of the baseline's {:?}",
            coop.p50(),
            baseline.p50()
        );
        std::process::exit(1);
    }
}

/// Runs the full crash-point sweeps plus the deterministic disk-fault
/// scenarios and reports coverage; exits non-zero with a reproduction
/// line on any invariant violation.
fn run_chaos(seed: u64) {
    use tabs_chaos::{registry, ChaosRunner};

    eprintln!("chaos sweep, seed={seed} …");
    let runner = ChaosRunner::new(seed);
    let mut killed = std::collections::BTreeSet::new();
    let outcome = runner
        .sweep_single_node()
        .map(|k| killed.extend(k))
        .and_then(|()| runner.sweep_group_commit().map(|k| killed.extend(k)))
        .and_then(|()| runner.sweep_distributed().map(|k| killed.extend(k)))
        .and_then(|()| runner.torn_write_scenario())
        .and_then(|()| runner.transient_read_scenario());
    if let Err(e) = outcome {
        eprintln!("chaos FAILED: {e}");
        eprintln!("reproduce with: tables chaos --seed {seed}");
        std::process::exit(1);
    }
    println!("crash points killed and recovered ({}):", killed.len());
    for p in &killed {
        println!("  {p}");
    }
    let missing: Vec<&str> = registry().into_iter().filter(|p| !killed.contains(p)).collect();
    if !missing.is_empty() {
        eprintln!("chaos FAILED: seed={seed} crash_point=none unswept points: {missing:?}");
        std::process::exit(1);
    }
    println!("all {} registered crash points swept; invariants held.", killed.len());
}
