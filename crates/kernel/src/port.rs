//! Ports: the kernel's inter-process communication primitive.
//!
//! Accent semantics (§2.1.1): many processes may hold *send rights* to a
//! port, exactly one holds the *receive right*; rights can be transmitted
//! in messages along with ordinary data. Each node runs one [`Kernel`]
//! instance; sends are counted against the node's primitive-operation
//! counters according to the message class.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use crate::ids::{NodeId, PortId};
use crate::msg::Message;
use crate::perfctr::PerfCounters;

/// What kind of process the port belongs to; drives primitive accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortClass {
    /// A TABS system process (Transaction Manager, Recovery Manager,
    /// Communication Manager, Name Server) or the kernel itself.
    System,
    /// A user data server on this node; RPCs count as Data Server Calls.
    DataServer,
    /// A Communication Manager proxy for a data server on a remote node;
    /// RPCs count as Inter-Node Data Server Calls.
    RemoteDataServer,
    /// A one-shot reply port.
    Reply,
}

/// Error returned when a send cannot be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The receive right was deallocated or never existed.
    DeadPort,
    /// The node's kernel has shut down (node crash).
    NodeDown,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::DeadPort => write!(f, "send to dead port"),
            SendError::NodeDown => write!(f, "node is down"),
        }
    }
}

impl std::error::Error for SendError {}

/// Error returned when a receive cannot complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The node's kernel has shut down; the process should exit.
    ShutDown,
    /// `recv_timeout` elapsed with no message.
    Timeout,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::ShutDown => write!(f, "kernel shut down"),
            RecvError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for RecvError {}

pub(crate) struct KernelInner {
    node: NodeId,
    next_port: AtomicU64,
    ports: Mutex<HashMap<u64, Sender<Message>>>,
    perf: Arc<PerfCounters>,
    trace: Mutex<Option<Arc<dyn crate::trace::TraceSink>>>,
    alive: AtomicBool,
    /// Receivers clone this; dropping the paired sender wakes them all.
    shutdown_rx: Receiver<()>,
    shutdown_tx: Mutex<Option<Sender<()>>>,
    pub(crate) processes: Mutex<Vec<(String, std::thread::JoinHandle<()>)>>,
}

/// One node's kernel: port registry, process registry, counters.
///
/// Cloning is cheap (shared handle). A simulated node crash is
/// [`Kernel::shutdown`]: every blocked receive wakes with
/// [`RecvError::ShutDown`], sends start failing, and volatile state is lost
/// when the owning structures drop.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<KernelInner>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("node", &self.inner.node).finish()
    }
}

impl Kernel {
    /// Boots a kernel for `node` with fresh counters.
    pub fn new(node: NodeId) -> Self {
        Self::with_counters(node, PerfCounters::new())
    }

    /// Boots a kernel sharing an existing counter set (used when a node is
    /// restarted and measurements should continue across the crash).
    pub fn with_counters(node: NodeId, perf: Arc<PerfCounters>) -> Self {
        Self::with_counters_epoch(node, perf, 0)
    }

    /// Boots a kernel whose port indices start in a per-incarnation
    /// namespace: port identifiers from before a crash never collide with
    /// ports of the rebooted node (Accent port names were unique per
    /// boot), so stale rights fail visibly instead of reaching the wrong
    /// receiver.
    pub fn with_counters_epoch(node: NodeId, perf: Arc<PerfCounters>, epoch: u32) -> Self {
        let (shutdown_tx, shutdown_rx) = channel::bounded(0);
        Kernel {
            inner: Arc::new(KernelInner {
                node,
                next_port: AtomicU64::new(u64::from(epoch) << 32 | 1),
                ports: Mutex::new(HashMap::new()),
                perf,
                trace: Mutex::new(None),
                alive: AtomicBool::new(true),
                shutdown_rx,
                shutdown_tx: Mutex::new(Some(shutdown_tx)),
                processes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The node this kernel runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The node's primitive-operation counters.
    pub fn perf(&self) -> &Arc<PerfCounters> {
        &self.inner.perf
    }

    /// Installs an observability sink for port sends.
    pub fn set_trace(&self, trace: Arc<dyn crate::trace::TraceSink>) {
        *self.inner.trace.lock() = Some(trace);
    }

    /// Whether the kernel is still running.
    pub fn is_alive(&self) -> bool {
        self.inner.alive.load(Ordering::Acquire)
    }

    /// Allocates a port, returning the send and receive rights.
    pub fn allocate_port(&self, class: PortClass) -> (SendRight, ReceiveRight) {
        let index = self.inner.next_port.fetch_add(1, Ordering::Relaxed);
        let id = PortId { node: self.inner.node, index };
        let (tx, rx) = channel::unbounded();
        self.inner.ports.lock().insert(index, tx);
        let send = SendRight { id, class, kernel: Arc::clone(&self.inner) };
        let recv = ReceiveRight {
            id,
            rx,
            shutdown: self.inner.shutdown_rx.clone(),
            kernel: Arc::clone(&self.inner),
        };
        (send, recv)
    }

    /// Mints a send right for an existing local port (the Name Server
    /// stores port identifiers; resolution turns them back into rights).
    /// Returns `None` for remote or dead ports.
    pub fn make_send_right(&self, port: PortId, class: PortClass) -> Option<SendRight> {
        if port.node != self.inner.node {
            return None;
        }
        let ports = self.inner.ports.lock();
        if ports.contains_key(&port.index) {
            Some(SendRight { id: port, class, kernel: Arc::clone(&self.inner) })
        } else {
            None
        }
    }

    /// Simulates a node crash: all receives wake with `ShutDown`, all
    /// future sends fail, and the port table is cleared. Volatile state
    /// held by the node's processes is lost when their threads exit.
    pub fn shutdown(&self) {
        self.inner.alive.store(false, Ordering::Release);
        // Dropping the sender closes the shutdown channel, waking every
        // receiver blocked in `select`.
        self.inner.shutdown_tx.lock().take();
        self.inner.ports.lock().clear();
    }

    /// Waits for every process spawned on this kernel to exit. Call after
    /// [`Kernel::shutdown`].
    pub fn join_all(&self) {
        let handles: Vec<_> = self.inner.processes.lock().drain(..).collect();
        for (_name, h) in handles {
            let _ = h.join();
        }
    }

    /// Spawns a named "Accent process" (an OS thread owned by this kernel).
    pub fn spawn<F>(&self, name: &str, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let handle = std::thread::Builder::new()
            .name(format!("{}-{}", self.inner.node, name))
            .spawn(f)
            .expect("thread spawn");
        self.inner.processes.lock().push((name.to_string(), handle));
    }
}

/// A cloneable right to send messages to one port.
#[derive(Clone)]
pub struct SendRight {
    id: PortId,
    class: PortClass,
    kernel: Arc<KernelInner>,
}

impl std::fmt::Debug for SendRight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendRight").field("id", &self.id).field("class", &self.class).finish()
    }
}

impl SendRight {
    /// The port this right sends to.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// The port's class (drives RPC accounting).
    pub fn class(&self) -> PortClass {
        self.class
    }

    /// Whether the port lives on `node`.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.id.node == node
    }

    /// Sends `msg`, counting it against the node's message counters.
    pub fn send(&self, msg: Message) -> Result<(), SendError> {
        self.kernel.perf.record(msg.class());
        let trace = self.kernel.trace.lock().clone();
        if let Some(trace) = trace {
            trace.port_send(self.id, msg.class(), msg.body.len());
        }
        self.send_unmetered(msg)
    }

    /// Sends without touching the counters. Used by the RPC layer, which
    /// accounts a whole call as one Data-Server-Call primitive instead of
    /// counting its constituent messages.
    pub fn send_unmetered(&self, msg: Message) -> Result<(), SendError> {
        if !self.kernel.alive.load(Ordering::Acquire) {
            return Err(SendError::NodeDown);
        }
        let tx = {
            let ports = self.kernel.ports.lock();
            match ports.get(&self.id.index) {
                Some(tx) => tx.clone(),
                None => return Err(SendError::DeadPort),
            }
        };
        tx.send(msg).map_err(|_| SendError::DeadPort)
    }
}

/// The unique right to receive messages from one port.
///
/// Dropping the receive right deallocates the port; subsequent sends fail
/// with [`SendError::DeadPort`].
pub struct ReceiveRight {
    id: PortId,
    rx: Receiver<Message>,
    shutdown: Receiver<()>,
    kernel: Arc<KernelInner>,
}

impl std::fmt::Debug for ReceiveRight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReceiveRight").field("id", &self.id).finish()
    }
}

impl ReceiveRight {
    /// The port this right receives from.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Creates an additional send right to this port.
    pub fn make_send_right(&self, class: PortClass) -> SendRight {
        SendRight { id: self.id, class, kernel: Arc::clone(&self.kernel) }
    }

    /// Blocks until a message arrives or the kernel shuts down.
    pub fn recv(&self) -> Result<Message, RecvError> {
        crossbeam::channel::select! {
            recv(self.rx) -> m => m.map_err(|_| RecvError::ShutDown),
            recv(self.shutdown) -> _ => {
                // The shutdown channel only ever errors (sender dropped);
                // drain any message raced in ahead of the shutdown.
                match self.rx.try_recv() {
                    Ok(m) => Ok(m),
                    Err(_) => Err(RecvError::ShutDown),
                }
            }
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, RecvError> {
        crossbeam::channel::select! {
            recv(self.rx) -> m => m.map_err(|_| RecvError::ShutDown),
            recv(self.shutdown) -> _ => {
                match self.rx.try_recv() {
                    Ok(m) => Ok(m),
                    Err(_) => Err(RecvError::ShutDown),
                }
            }
            default(timeout) => Err(RecvError::Timeout),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }
}

impl Drop for ReceiveRight {
    fn drop(&mut self) {
        self.kernel.ports.lock().remove(&self.id.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfctr::PrimitiveOp;

    #[test]
    fn send_and_receive() {
        let k = Kernel::new(NodeId(1));
        let (tx, rx) = k.allocate_port(PortClass::System);
        tx.send(Message::new(7, vec![1, 2, 3])).unwrap();
        let m = rx.recv().unwrap();
        assert_eq!(m.op, 7);
        assert_eq!(m.body, vec![1, 2, 3]);
    }

    #[test]
    fn send_counts_message_class() {
        let k = Kernel::new(NodeId(1));
        let (tx, _rx) = k.allocate_port(PortClass::System);
        tx.send(Message::new(1, vec![0; 10])).unwrap();
        tx.send(Message::new(1, vec![0; 1100])).unwrap();
        tx.send(Message::pointer(1, vec![0; 4096])).unwrap();
        tx.send_unmetered(Message::new(1, vec![])).unwrap();
        let s = k.perf().snapshot();
        assert_eq!(s.get(PrimitiveOp::SmallContiguousMessage), 1);
        assert_eq!(s.get(PrimitiveOp::LargeContiguousMessage), 1);
        assert_eq!(s.get(PrimitiveOp::PointerMessage), 1);
    }

    #[test]
    fn dead_port_send_fails() {
        let k = Kernel::new(NodeId(1));
        let (tx, rx) = k.allocate_port(PortClass::System);
        drop(rx);
        assert_eq!(tx.send(Message::new(1, vec![])), Err(SendError::DeadPort));
    }

    #[test]
    fn shutdown_wakes_blocked_receiver() {
        let k = Kernel::new(NodeId(1));
        let (_tx, rx) = k.allocate_port(PortClass::System);
        let k2 = k.clone();
        let waiter = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        k2.shutdown();
        assert!(matches!(waiter.join().unwrap(), Err(RecvError::ShutDown)));
    }

    #[test]
    fn shutdown_fails_future_sends() {
        let k = Kernel::new(NodeId(1));
        let (tx, _rx) = k.allocate_port(PortClass::System);
        k.shutdown();
        assert_eq!(tx.send(Message::new(1, vec![])), Err(SendError::NodeDown));
    }

    #[test]
    fn recv_timeout_elapses() {
        let k = Kernel::new(NodeId(1));
        let (_tx, rx) = k.allocate_port(PortClass::System);
        assert!(matches!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvError::Timeout)));
    }

    #[test]
    fn rights_transfer_in_messages() {
        let k = Kernel::new(NodeId(1));
        let (main_tx, main_rx) = k.allocate_port(PortClass::System);
        let (inner_tx, inner_rx) = k.allocate_port(PortClass::Reply);
        main_tx.send(Message::new(1, vec![]).with_port(inner_tx)).unwrap();
        let mut m = main_rx.recv().unwrap();
        let carried = m.ports.pop().unwrap();
        carried.send(Message::new(2, vec![9])).unwrap();
        assert_eq!(inner_rx.recv().unwrap().body, vec![9]);
    }

    #[test]
    fn spawn_and_join() {
        let k = Kernel::new(NodeId(1));
        let (tx, rx) = k.allocate_port(PortClass::System);
        k.spawn("echo", move || loop {
            match rx.recv() {
                Ok(m) => {
                    if let Some(reply) = m.reply {
                        let _ = reply.send(Message::new(m.op + 1, m.body));
                    }
                }
                Err(_) => return,
            }
        });
        let (rtx, rrx) = k.allocate_port(PortClass::Reply);
        tx.send(Message::new(5, vec![1]).with_reply(rtx)).unwrap();
        let r = rrx.recv().unwrap();
        assert_eq!(r.op, 6);
        k.shutdown();
        k.join_all();
    }

    #[test]
    fn message_racing_shutdown_still_delivered() {
        let k = Kernel::new(NodeId(1));
        let (tx, rx) = k.allocate_port(PortClass::System);
        tx.send(Message::new(3, vec![])).unwrap();
        k.shutdown();
        // A message already queued before shutdown should be drained.
        assert!(rx.recv().is_ok());
        assert!(matches!(rx.recv(), Err(RecvError::ShutDown)));
    }
}
