//! Conformance tests for the published library interfaces: the complete
//! server library (Table 3-1), the transaction management library
//! (Table 3-2) and the Name Server library (Table 3-3).

use std::sync::Arc;
use std::time::Duration;

use tabs_core::prelude::*;
use tabs_core::{Cluster, ObjectId};
use tabs_lock::StdMode;

/// Spins up a node plus a scratch data server whose dispatch executes a
/// caller-provided probe against the full `OpCtx` interface.
fn with_probe_server(
    probe: impl Fn(&OpCtx<'_>) -> Result<Vec<u8>, ServerError> + Send + Sync + 'static,
    check: impl FnOnce(&tabs_core::Node, &DataServer, &AppHandle),
) {
    let cluster = Cluster::new();
    let node = cluster.boot_node(NodeId(1));
    let seg = node.add_segment("probe-seg", 16);
    let ds = DataServer::new(&node.deps(), ServerConfig::new("probe", seg)).unwrap();
    ds.accept_requests(Arc::new(move |ctx, _op, _args| probe(ctx)));
    node.recover().unwrap();
    let app = node.app();
    check(&node, &ds, &app);
    node.shutdown();
}

fn call(app: &AppHandle, ds: &DataServer, tid: Tid) -> Result<Vec<u8>, AppError> {
    app.call(&ds.send_right(), tid, 1, Vec::new())
}

// ---- Table 3-1: the server library ----

#[test]
fn table_3_1_address_arithmetic() {
    with_probe_server(
        |ctx| {
            // CreateObjectID / ConvertObjectIDtoVirtualAddress.
            let obj = ctx.create_object_id(100, 8);
            assert_eq!(ctx.object_offset(obj), 100);
            assert_eq!(obj.len, 8);
            Ok(Vec::new())
        },
        |_n, ds, app| {
            let t = app.begin_transaction(Tid::NULL).unwrap();
            call(app, ds, t).unwrap();
            app.end_transaction(t).unwrap();
        },
    );
}

#[test]
fn table_3_1_locking_primitives() {
    with_probe_server(
        |ctx| {
            let obj = ctx.create_object_id(0, 8);
            // LockObject / IsObjectLocked / ConditionallyLockObject.
            assert!(!ctx.is_object_locked(obj));
            ctx.lock_object(obj, StdMode::Exclusive)?;
            assert!(ctx.is_object_locked(obj));
            // Re-acquire by the same transaction: immediate.
            assert!(ctx.conditionally_lock_object(obj, StdMode::Exclusive));
            Ok(Vec::new())
        },
        |_n, ds, app| {
            let t = app.begin_transaction(Tid::NULL).unwrap();
            call(app, ds, t).unwrap();
            assert!(app.end_transaction(t).unwrap().is_committed());
            // "All unlocking is done automatically by the server library at
            // commit or abort time."
            assert_eq!(ds.locks().locked_object_count(), 0);
        },
    );
}

#[test]
fn table_3_1_paging_control_and_logging() {
    with_probe_server(
        |ctx| {
            let obj = ctx.create_object_id(0, 8);
            ctx.lock_object(obj, StdMode::Exclusive)?;
            // PinObject / UnPinObject / UnPinAllObjects.
            ctx.pin_object(obj)?;
            ctx.unpin_object(obj)?;
            ctx.pin_object(obj)?;
            ctx.unpin_all_objects()?;
            // PinAndBuffer / LogAndUnPin.
            ctx.pin_and_buffer(obj)?;
            ctx.write_raw(obj, &7u64.to_le_bytes())?;
            ctx.log_and_unpin(obj)?;
            Ok(Vec::new())
        },
        |node, ds, app| {
            let t = app.begin_transaction(Tid::NULL).unwrap();
            call(app, ds, t).unwrap();
            assert!(app.end_transaction(t).unwrap().is_committed());
            // The update was value-logged.
            assert!(node
                .rm
                .log()
                .durable_entries()
                .iter()
                .any(|e| matches!(e.record, tabs_wal::LogRecord::ValueUpdate { .. })));
        },
    );
}

#[test]
fn table_3_1_marked_object_batch() {
    with_probe_server(
        |ctx| {
            // LockAndMark / PinAndBufferMarkedObjects /
            // LogAndUnPinMarkedObjects.
            for i in 0..4u64 {
                ctx.lock_and_mark(ctx.create_object_id(i * 8, 8), StdMode::Exclusive)?;
            }
            ctx.pin_and_buffer_marked_objects()?;
            for i in 0..4u64 {
                ctx.write_raw(ctx.create_object_id(i * 8, 8), &(i + 1).to_le_bytes())?;
            }
            ctx.log_and_unpin_marked_objects()?;
            Ok(Vec::new())
        },
        |_n, ds, app| {
            let t = app.begin_transaction(Tid::NULL).unwrap();
            call(app, ds, t).unwrap();
            assert!(app.end_transaction(t).unwrap().is_committed());
            assert_eq!(ds.segment().read_u64(24).unwrap(), 4);
        },
    );
}

#[test]
fn table_3_1_execute_transaction() {
    with_probe_server(
        |ctx| {
            // ExecuteTransaction: runs in a fresh top-level transaction.
            let outer = ctx.tid;
            ctx.execute_transaction(|inner| {
                assert_ne!(inner.tid, outer, "a new top-level tid");
                let obj = inner.create_object_id(64, 8);
                inner.lock_object(obj, StdMode::Exclusive)?;
                inner.pin_and_buffer(obj)?;
                inner.write_raw(obj, &9u64.to_le_bytes())?;
                inner.log_and_unpin(obj)?;
                Ok(Vec::new())
            })
        },
        |_n, ds, app| {
            let t = app.begin_transaction(Tid::NULL).unwrap();
            call(app, ds, t).unwrap();
            // Even though the outer transaction aborts, the
            // ExecuteTransaction effect is committed.
            app.abort_transaction(t).unwrap();
            assert_eq!(ds.segment().read_u64(64).unwrap(), 9);
        },
    );
}

// ---- Table 3-2: the transaction management library ----

#[test]
fn table_3_2_begin_end_abort() {
    let cluster = Cluster::new();
    let node = cluster.boot_node(NodeId(1));
    node.recover().unwrap();
    let app = node.app();
    // BeginTransaction(null) → new top-level.
    let top = app.begin_transaction(Tid::NULL).unwrap();
    // BeginTransaction(top) → subtransaction.
    let sub = app.begin_transaction(top).unwrap();
    assert_ne!(top, sub);
    // EndTransaction returns a boolean.
    assert!(app.end_transaction(sub).unwrap().is_committed());
    // AbortTransaction.
    app.abort_transaction(top).unwrap();
    // TransactionIsAborted is observable.
    assert!(app.transaction_is_aborted(top));
    assert!(app.end_transaction(top).unwrap().is_aborted());
    node.shutdown();
}

#[test]
fn table_3_2_transaction_is_aborted_raised_on_call() {
    with_probe_server(
        |_ctx| Ok(Vec::new()),
        |_n, ds, app| {
            let t = app.begin_transaction(Tid::NULL).unwrap();
            app.abort_transaction(t).unwrap();
            // Calling a server under an aborted tid raises the exception.
            let err = call(app, ds, t).unwrap_err();
            assert!(matches!(err, AppError::TransactionIsAborted(_)), "{err}");
        },
    );
}

// ---- Table 3-3: the Name Server library ----

#[test]
fn table_3_3_register_lookup_deregister() {
    let cluster = Cluster::new();
    let n1 = cluster.boot_node(NodeId(1));
    let n2 = cluster.boot_node(NodeId(2));
    n1.recover().unwrap();
    n2.recover().unwrap();
    let seg = SegmentId { node: NodeId(2), index: 0 };
    let port = tabs_kernel::PortId { node: NodeId(2), index: 77 };
    let oid = ObjectId::new(seg, 0, 8);

    // Register(Name, Type, Port, ObjectID) on node 2.
    n2.ns.register("svc", "demo", port, oid);

    // LookUp(Name, …, DesiredNumberOfPortIDs, MaxWait) from node 1 uses
    // the broadcast protocol.
    let found = n1.ns.lookup("svc", 1, Duration::from_secs(2));
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].port, port);
    assert_eq!(found[0].object, oid);
    assert_eq!(found[0].type_name, "demo");

    // DeRegister(Name, Port, ObjectID).
    n2.ns.deregister("svc", port, oid);
    assert!(n2.ns.lookup("svc", 1, Duration::ZERO).is_empty());

    n1.shutdown();
    n2.shutdown();
}

// ---- Application-library conveniences ----

#[test]
fn run_commits_and_run_with_retries_retries() {
    with_probe_server(
        |ctx| {
            let obj = ctx.create_object_id(0, 8);
            ctx.lock_object(obj, StdMode::Exclusive)?;
            ctx.pin_and_buffer(obj)?;
            let cur = u64::from_le_bytes(ctx.read_object(obj)?[..8].try_into().unwrap());
            ctx.write_raw(obj, &(cur + 1).to_le_bytes())?;
            ctx.log_and_unpin(obj)?;
            Ok(Vec::new())
        },
        |_n, ds, app| {
            // run: commits on success.
            app.run(|t| call(app, ds, t).map(|_| ())).unwrap();
            assert_eq!(ds.segment().read_u64(0).unwrap(), 1);
            // run: aborts on failure, surfacing the error.
            let err = app
                .run(|t| -> Result<(), AppError> {
                    call(app, ds, t)?;
                    Err(AppError::Rpc("application decided to fail".into()))
                })
                .unwrap_err();
            assert!(matches!(err, AppError::Rpc(_)));
            assert_eq!(ds.segment().read_u64(0).unwrap(), 1, "failed run's increment rolled back");
            // run_with_retries: eventually succeeds after transient errors.
            let attempts = std::sync::atomic::AtomicU32::new(0);
            app.run_with_retries(5, |t| {
                if attempts.fetch_add(1, std::sync::atomic::Ordering::Relaxed) < 2 {
                    return Err(AppError::Rpc("transient".into()));
                }
                call(app, ds, t).map(|_| ())
            })
            .unwrap();
            assert_eq!(attempts.load(std::sync::atomic::Ordering::Relaxed), 3);
            assert_eq!(ds.segment().read_u64(0).unwrap(), 2);
        },
    );
}

#[test]
fn lock_timeout_is_configurable_per_server() {
    // "time-outs, which are explicitly set by system users" (§2.1.3).
    let cluster = Cluster::new();
    let node = cluster.boot_node(NodeId(1));
    let seg = node.add_segment("fast-seg", 16);
    let ds = DataServer::new(
        &node.deps(),
        ServerConfig::new("fast", seg).with_lock_timeout(Duration::from_millis(40)),
    )
    .unwrap();
    ds.accept_requests(Arc::new(|ctx, _op, _args| {
        let obj = ctx.create_object_id(0, 8);
        ctx.lock_object(obj, StdMode::Exclusive)?;
        Ok(Vec::new())
    }));
    node.recover().unwrap();
    let app = node.app();
    let t1 = app.begin_transaction(Tid::NULL).unwrap();
    call(&app, &ds, t1).unwrap();
    // The second caller times out after ~40 ms, not the library default.
    let t2 = app.begin_transaction(Tid::NULL).unwrap();
    let start = std::time::Instant::now();
    assert!(call(&app, &ds, t2).is_err());
    assert!(start.elapsed() < Duration::from_millis(250), "custom time-out applied");
    app.abort_transaction(t2).unwrap();
    app.end_transaction(t1).unwrap();
    node.shutdown();
}
