//! Seed-reproducible fault plans: disk-fault probabilities plus an
//! adversarial network schedule, all derived from one `u64`.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tabs_kernel::NodeId;
use tabs_net::{DatagramFate, DatagramPolicy};

/// xorshift64* — the same tiny generator the kernel's [`tabs_kernel::DiskFaults`]
/// uses, so a plan's behaviour depends on nothing but its seed.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Seeds the generator (zero is mapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform draw in `[0, n)` (`n == 0` is treated as 1).
    pub fn pick(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Adversarial datagram schedule: every routing decision is drawn from the
/// plan's RNG, so the same seed replays the same drops, duplicates and
/// delay-reorderings.
#[derive(Debug, Clone)]
pub struct NetSchedule {
    /// Probability a datagram is silently dropped.
    pub drop_prob: f64,
    /// Probability a datagram is delivered twice.
    pub dup_prob: f64,
    /// Probability a datagram is delayed (and thereby reordered behind
    /// later traffic).
    pub delay_prob: f64,
    /// Upper bound on the injected delay.
    pub max_delay: Duration,
}

impl NetSchedule {
    /// A schedule tuned to stress control-plane datagrams (deadlock
    /// probes, 2PC retransmissions): heavier duplication and delay than
    /// the general-purpose plan draws, with drops still bounded so
    /// retransmission and re-initiated scans can always make progress.
    pub fn probe_stress(seed: u64) -> Self {
        let mut rng = ChaosRng::new(seed ^ 0x5EED_0000_0000_0002);
        NetSchedule {
            drop_prob: 0.05 + rng.next_f64() * 0.20,
            dup_prob: 0.10 + rng.next_f64() * 0.25,
            delay_prob: 0.20 + rng.next_f64() * 0.30,
            max_delay: Duration::from_millis(1 + rng.pick(10)),
        }
    }

    /// Realizes this schedule as an installable datagram policy with its
    /// own seeded RNG stream.
    pub fn policy(&self, seed: u64) -> Arc<ScheduledPolicy> {
        ScheduledPolicy::new(self.clone(), seed)
    }
}

/// Sector-level disk misbehaviour applied through [`tabs_kernel::FaultDisk`].
#[derive(Debug, Clone)]
pub struct DiskFaultSpec {
    /// Probability a sector read fails transiently.
    pub read_error_prob: f64,
    /// Probability a sector write is torn (header updated, payload stale).
    pub torn_write_prob: f64,
}

/// A complete reproducible fault plan for one chaos run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed every derived decision flows from.
    pub seed: u64,
    /// Disk faults applied to every node's data disks.
    pub disk: DiskFaultSpec,
    /// The network schedule installed on the cluster switch.
    pub net: NetSchedule,
}

impl FaultPlan {
    /// Derives a plan from `seed`. Probabilities are bounded so workloads
    /// stay live (2PC retransmission and client retries can always make
    /// progress between injected faults).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = ChaosRng::new(seed);
        let disk = DiskFaultSpec {
            read_error_prob: rng.next_f64() * 0.10,
            torn_write_prob: rng.next_f64() * 0.25,
        };
        let net = NetSchedule {
            drop_prob: rng.next_f64() * 0.20,
            dup_prob: rng.next_f64() * 0.20,
            delay_prob: rng.next_f64() * 0.40,
            max_delay: Duration::from_millis(1 + rng.pick(15)),
        };
        FaultPlan { seed, disk, net }
    }

    /// The datagram policy realizing this plan's network schedule.
    pub fn policy(&self) -> Arc<ScheduledPolicy> {
        ScheduledPolicy::new(self.net.clone(), self.seed ^ 0x5EED_0000_0000_0001)
    }
}

/// [`DatagramPolicy`] implementation driven by a [`NetSchedule`] and a
/// seeded RNG.
pub struct ScheduledPolicy {
    schedule: NetSchedule,
    rng: Mutex<ChaosRng>,
}

impl ScheduledPolicy {
    /// Builds the policy with its own RNG stream.
    pub fn new(schedule: NetSchedule, seed: u64) -> Arc<Self> {
        Arc::new(Self { schedule, rng: Mutex::new(ChaosRng::new(seed)) })
    }
}

impl DatagramPolicy for ScheduledPolicy {
    fn route(&self, _from: NodeId, _to: NodeId, _body: &[u8]) -> DatagramFate {
        let mut rng = self.rng.lock();
        if rng.chance(self.schedule.drop_prob) {
            DatagramFate::Drop
        } else if rng.chance(self.schedule.dup_prob) {
            DatagramFate::Duplicate
        } else if rng.chance(self.schedule.delay_prob) {
            let ns = self.schedule.max_delay.as_nanos().max(1) as u64;
            DatagramFate::Delay(Duration::from_nanos(1 + rng.pick(ns)))
        } else {
            DatagramFate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::from_seed(42);
        let b = FaultPlan::from_seed(42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::from_seed(1);
        let b = FaultPlan::from_seed(2);
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn policy_decisions_replay_bit_for_bit() {
        let plan = FaultPlan { seed: 7, ..FaultPlan::from_seed(7) };
        let fates = |p: Arc<ScheduledPolicy>| -> Vec<String> {
            (0..256).map(|_| format!("{:?}", p.route(NodeId(1), NodeId(2), b"x"))).collect()
        };
        assert_eq!(fates(plan.policy()), fates(plan.policy()));
    }

    #[test]
    fn rng_is_uniform_enough_for_probabilities() {
        let mut rng = ChaosRng::new(99);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits} hits for p=0.25");
    }
}
