//! Property tests over random fault plans: whatever disk faults and
//! adversarial network schedule a seed derives, the invariant oracle must
//! hold after recovery — and the whole run must be deterministic, i.e.
//! the same seed must produce byte-identical trace event sequences.

use proptest::prelude::*;

use tabs_chaos::{
    registry, ChaosRunner, FaultPlan, FASTPATH_POINTS, GROUP_COMMIT_POINTS, MIGRATION_POINTS,
    PAIRWISE_ARMS, REPLICATION_POINTS, SINGLE_NODE_POINTS, TWO_PC_POINTS,
};

/// Registry-completeness gate: every crash point registered anywhere in
/// the stack must appear in exactly one sweep list, and every pairwise
/// double-kill arm must reference swept points. Adding a `crash_point!`
/// to any crate without teaching a sweep to reach it fails here — before
/// the expensive sweeps even run.
#[test]
fn every_registered_crash_point_has_a_sweep_entry() {
    let mut swept: Vec<&str> = Vec::new();
    swept.extend_from_slice(SINGLE_NODE_POINTS);
    swept.extend_from_slice(GROUP_COMMIT_POINTS);
    swept.extend_from_slice(FASTPATH_POINTS);
    swept.extend_from_slice(TWO_PC_POINTS);
    swept.extend_from_slice(MIGRATION_POINTS);
    swept.extend_from_slice(REPLICATION_POINTS);
    let unique: std::collections::BTreeSet<&str> = swept.iter().copied().collect();
    assert_eq!(unique.len(), swept.len(), "a crash point appears in two sweep lists");
    let reg: std::collections::BTreeSet<&str> = registry().into_iter().collect();
    let missing: Vec<&&str> = reg.difference(&unique).collect();
    assert!(missing.is_empty(), "registered crash points no sweep covers: {missing:?}");
    let stale: Vec<&&str> = unique.difference(&reg).collect();
    assert!(stale.is_empty(), "sweep lists name unregistered crash points: {stale:?}");
    for &(coord, part) in PAIRWISE_ARMS {
        assert!(reg.contains(coord), "pairwise arm references unregistered point {coord}");
        assert!(reg.contains(part), "pairwise arm references unregistered point {part}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    /// Random torn-write/read-error probabilities plus a random
    /// drop/duplicate/delay datagram schedule never break atomicity,
    /// durability, conservation, or lock hygiene.
    #[test]
    fn random_fault_plans_never_violate_invariants(seed in any::<u64>()) {
        let plan = FaultPlan::from_seed(seed);
        let runner = ChaosRunner::new(seed);
        if let Err(e) = runner.run_plan(&plan) {
            prop_assert!(false, "{}", e);
        }
    }

    /// The harness is deterministic: replaying a seed yields the exact
    /// same observable event sequence (per `tabs-obs` tracing).
    #[test]
    fn same_seed_yields_byte_identical_traces(seed in any::<u64>()) {
        let plan = FaultPlan::from_seed(seed);
        let runner = ChaosRunner::new(seed);
        let first = runner.trace_fingerprint(&plan).unwrap_or_else(|e| panic!("{e}"));
        let second = runner.trace_fingerprint(&plan).unwrap_or_else(|e| panic!("{e}"));
        prop_assert_eq!(first, second, "seed={} crash_point=none trace diverged", seed);
    }
}
