//! The Communication Managers' failure detector.
//!
//! §3.2.4 assumes a session service that "detects node failure"; this
//! module implements the detection for the datagram side as well. Each
//! Communication Manager broadcasts a heartbeat every interval and tracks
//! when it last heard from every watched peer (any `Ping` or `Pong`
//! counts). A peer silent for `suspect_after` consecutive intervals is
//! *suspected*: suspicion sinks are notified (the Transaction Manager
//! starts cooperative termination for in-doubt transactions, the Name
//! Server drops cached entries), and the suspect is probed directly with
//! exponential backoff until it answers. Suspicion is a local, revocable
//! judgement — a single `Pong` clears it — so a false suspicion under a
//! lossy-but-connected network costs retries, never safety.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use tabs_kernel::{Kernel, NodeId, Tid};
use tabs_obs::{TraceCollector, TraceEvent};
use tabs_proto::BeatMsg;

/// Heartbeat and suspicion tuning.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// How often each node broadcasts a heartbeat.
    pub interval: Duration,
    /// Consecutive silent intervals before a peer is suspected.
    pub suspect_after: u32,
    /// Cap on the exponential backoff between direct probes of a suspect.
    pub probe_cap: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(50),
            suspect_after: 4,
            probe_cap: Duration::from_millis(800),
        }
    }
}

/// How the failure detector reaches the network (the Communication
/// Manager's datagram endpoint).
pub trait BeatTransport: Send + Sync {
    /// Sends a heartbeat to one peer.
    fn send(&self, to: NodeId, msg: BeatMsg);
    /// Broadcasts a heartbeat to every attached node.
    fn broadcast(&self, msg: BeatMsg);
}

/// A component that wants to hear about reachability transitions.
pub trait SuspicionSink: Send + Sync {
    /// `peer` has been silent past the suspicion threshold.
    fn peer_suspected(&self, peer: NodeId);
    /// A previously suspected `peer` answered again.
    fn peer_reachable(&self, _peer: NodeId) {}
}

struct PeerState {
    last_seen: Instant,
    /// Consecutive intervals with no traffic from the peer.
    missed: u32,
    suspected: bool,
    next_probe: Instant,
    probe_backoff: Duration,
}

/// Per-node failure detector run by the Communication Manager.
pub struct FailureDetector {
    node: NodeId,
    config: HeartbeatConfig,
    transport: Mutex<Option<Arc<dyn BeatTransport>>>,
    trace: Mutex<Option<Arc<TraceCollector>>>,
    sinks: Mutex<Vec<Arc<dyn SuspicionSink>>>,
    peers: Mutex<HashMap<NodeId, PeerState>>,
    seq: AtomicU64,
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureDetector").field("node", &self.node).finish()
    }
}

impl FailureDetector {
    /// Creates a detector for `node`; wire it with [`set_transport`],
    /// [`watch`] and [`add_sink`], then [`start`] it.
    ///
    /// [`set_transport`]: FailureDetector::set_transport
    /// [`watch`]: FailureDetector::watch
    /// [`add_sink`]: FailureDetector::add_sink
    /// [`start`]: FailureDetector::start
    pub fn new(node: NodeId, config: HeartbeatConfig) -> Arc<Self> {
        Arc::new(Self {
            node,
            config,
            transport: Mutex::new(None),
            trace: Mutex::new(None),
            sinks: Mutex::new(Vec::new()),
            peers: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
        })
    }

    /// This node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The heartbeat tuning in effect.
    pub fn config(&self) -> HeartbeatConfig {
        self.config
    }

    /// Installs the datagram transport.
    pub fn set_transport(&self, transport: Arc<dyn BeatTransport>) {
        *self.transport.lock() = Some(transport);
    }

    /// Installs a trace collector for reachability events.
    pub fn set_trace(&self, trace: Arc<TraceCollector>) {
        *self.trace.lock() = Some(trace);
    }

    /// Registers a component to notify on suspicion transitions.
    pub fn add_sink(&self, sink: Arc<dyn SuspicionSink>) {
        self.sinks.lock().push(sink);
    }

    /// Starts monitoring `peer` (counted as just seen).
    pub fn watch(&self, peer: NodeId) {
        if peer == self.node {
            return;
        }
        let now = Instant::now();
        self.peers.lock().entry(peer).or_insert(PeerState {
            last_seen: now,
            missed: 0,
            suspected: false,
            next_probe: now,
            probe_backoff: self.config.interval,
        });
    }

    /// Whether `peer` is currently suspected unreachable.
    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.peers.lock().get(&peer).map(|p| p.suspected).unwrap_or(false)
    }

    /// The exported reachability view: every watched peer and whether it
    /// currently looks reachable.
    pub fn reachability(&self) -> Vec<(NodeId, bool)> {
        let mut v: Vec<(NodeId, bool)> =
            self.peers.lock().iter().map(|(n, p)| (*n, !p.suspected)).collect();
        v.sort();
        v
    }

    /// Spawns the periodic heartbeat process on `kernel`.
    pub fn start(self: &Arc<Self>, kernel: &Kernel) {
        let fd = Arc::clone(self);
        let kernel = kernel.clone();
        let interval = self.config.interval;
        kernel.clone().spawn("failure-detector", move || {
            while kernel.is_alive() {
                std::thread::sleep(interval);
                fd.tick();
            }
        });
    }

    /// One heartbeat round: broadcast a ping, advance miss counters, and
    /// probe suspects whose backoff expired.
    pub fn tick(&self) {
        let transport = match self.transport.lock().clone() {
            Some(t) => t,
            None => return,
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        transport.broadcast(BeatMsg::Ping { from: self.node, seq });

        let now = Instant::now();
        let mut newly_suspected = Vec::new();
        let mut misses = Vec::new();
        let mut probes = Vec::new();
        {
            let mut peers = self.peers.lock();
            for (&peer, state) in peers.iter_mut() {
                if state.suspected {
                    // Probe directly with exponential backoff: broadcast
                    // alone would stop reaching a peer that heals on a
                    // different schedule than our suspicion did.
                    if now >= state.next_probe {
                        probes.push(peer);
                        state.next_probe = now + state.probe_backoff;
                        state.probe_backoff = (state.probe_backoff * 2).min(self.config.probe_cap);
                    }
                    continue;
                }
                if now.duration_since(state.last_seen) > self.config.interval {
                    state.missed += 1;
                    misses.push((peer, state.missed));
                    if state.missed >= self.config.suspect_after {
                        state.suspected = true;
                        state.next_probe = now + self.config.interval;
                        state.probe_backoff = self.config.interval * 2;
                        newly_suspected.push(peer);
                    }
                }
            }
        }
        for (peer, missed) in misses {
            self.emit(TraceEvent::HeartbeatMiss { node: peer, missed });
        }
        for peer in probes {
            transport.send(peer, BeatMsg::Ping { from: self.node, seq });
        }
        for peer in newly_suspected {
            self.emit(TraceEvent::PeerSuspected { node: peer });
            for sink in self.sinks.lock().clone() {
                sink.peer_suspected(peer);
            }
        }
    }

    /// Handles an inbound heartbeat datagram. `from` is the envelope
    /// sender (it matches the `from` inside the message; the envelope is
    /// authoritative).
    pub fn handle(&self, from: NodeId, msg: BeatMsg) {
        self.record_alive(from);
        match msg {
            BeatMsg::Ping { seq, .. } => {
                if let Some(t) = self.transport.lock().clone() {
                    t.send(from, BeatMsg::Pong { from: self.node, seq });
                }
            }
            BeatMsg::Pong { .. } => {}
        }
    }

    /// Marks `peer` as heard-from now; clears suspicion if set.
    fn record_alive(&self, peer: NodeId) {
        if peer == self.node {
            return;
        }
        let recovered = {
            let mut peers = self.peers.lock();
            match peers.get_mut(&peer) {
                Some(state) => {
                    state.last_seen = Instant::now();
                    state.missed = 0;
                    std::mem::replace(&mut state.suspected, false)
                }
                // Traffic from an unwatched peer (e.g. a node that joined
                // after boot): start watching it.
                None => {
                    let now = Instant::now();
                    peers.insert(
                        peer,
                        PeerState {
                            last_seen: now,
                            missed: 0,
                            suspected: false,
                            next_probe: now,
                            probe_backoff: self.config.interval,
                        },
                    );
                    false
                }
            }
        };
        if recovered {
            self.emit(TraceEvent::PeerReachable { node: peer });
            for sink in self.sinks.lock().clone() {
                sink.peer_reachable(peer);
            }
        }
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(t) = self.trace.lock().as_ref() {
            t.record(Tid::NULL, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        sent: Mutex<Vec<(NodeId, BeatMsg)>>,
        broadcasts: Mutex<Vec<BeatMsg>>,
    }

    impl BeatTransport for Recorder {
        fn send(&self, to: NodeId, msg: BeatMsg) {
            self.sent.lock().push((to, msg));
        }
        fn broadcast(&self, msg: BeatMsg) {
            self.broadcasts.lock().push(msg);
        }
    }

    #[derive(Default)]
    struct SinkLog {
        suspected: Mutex<Vec<NodeId>>,
        reachable: Mutex<Vec<NodeId>>,
    }

    impl SuspicionSink for SinkLog {
        fn peer_suspected(&self, peer: NodeId) {
            self.suspected.lock().push(peer);
        }
        fn peer_reachable(&self, peer: NodeId) {
            self.reachable.lock().push(peer);
        }
    }

    fn fast_config() -> HeartbeatConfig {
        HeartbeatConfig {
            interval: Duration::from_millis(1),
            suspect_after: 3,
            probe_cap: Duration::from_millis(8),
        }
    }

    #[test]
    fn silent_peer_becomes_suspected_then_recovers() {
        let fd = FailureDetector::new(NodeId(1), fast_config());
        let transport = Arc::new(Recorder::default());
        fd.set_transport(Arc::clone(&transport) as Arc<dyn BeatTransport>);
        let sink = Arc::new(SinkLog::default());
        fd.add_sink(Arc::clone(&sink) as Arc<dyn SuspicionSink>);
        fd.watch(NodeId(2));
        assert!(!fd.is_suspected(NodeId(2)));

        // Let enough silence accumulate, ticking past the threshold.
        for _ in 0..fast_config().suspect_after + 1 {
            std::thread::sleep(Duration::from_millis(3));
            fd.tick();
        }
        assert!(fd.is_suspected(NodeId(2)));
        assert_eq!(sink.suspected.lock().clone(), vec![NodeId(2)]);
        assert_eq!(fd.reachability(), vec![(NodeId(2), false)]);
        // Suspects get directed probes, not just broadcasts.
        assert!(transport.sent.lock().iter().any(|(to, _)| *to == NodeId(2)));

        // One answer clears the suspicion.
        fd.handle(NodeId(2), BeatMsg::Pong { from: NodeId(2), seq: 0 });
        assert!(!fd.is_suspected(NodeId(2)));
        assert_eq!(sink.reachable.lock().clone(), vec![NodeId(2)]);
        assert_eq!(fd.reachability(), vec![(NodeId(2), true)]);
    }

    #[test]
    fn ping_draws_pong_and_counts_as_alive() {
        let fd = FailureDetector::new(NodeId(1), fast_config());
        let transport = Arc::new(Recorder::default());
        fd.set_transport(Arc::clone(&transport) as Arc<dyn BeatTransport>);
        fd.handle(NodeId(3), BeatMsg::Ping { from: NodeId(3), seq: 9 });
        let sent = transport.sent.lock().clone();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, NodeId(3));
        assert!(matches!(sent[0].1, BeatMsg::Pong { from: NodeId(1), seq: 9 }));
        // The unwatched sender is now watched and reachable.
        assert_eq!(fd.reachability(), vec![(NodeId(3), true)]);
    }

    #[test]
    fn regular_traffic_never_suspects() {
        let fd = FailureDetector::new(NodeId(1), fast_config());
        let transport = Arc::new(Recorder::default());
        fd.set_transport(transport as Arc<dyn BeatTransport>);
        fd.watch(NodeId(2));
        for _ in 0..20 {
            fd.handle(NodeId(2), BeatMsg::Ping { from: NodeId(2), seq: 0 });
            fd.tick();
        }
        assert!(!fd.is_suspected(NodeId(2)));
    }
}
