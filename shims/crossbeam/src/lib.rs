//! A hermetic stand-in for the `crossbeam` crate.
//!
//! The workspace builds with no network access, so this shim provides the
//! `crossbeam::channel` subset the TABS reproduction uses: multi-producer
//! multi-consumer channels with disconnect detection, timeouts, and a
//! two-receiver [`select!`] macro (the kernel's receive-or-shutdown and the
//! Communication Manager loops use exactly that shape).
//!
//! Channels are unbounded; `bounded(n)` is accepted for API compatibility
//! but does not apply back-pressure. The only bounded channel in the tree
//! is the kernel's zero-capacity shutdown channel, which is never sent on —
//! it signals purely by sender drop — so the distinction is unobservable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, Weak};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`]: channel empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with no message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Wakes a blocked [`select2`] when either channel becomes ready.
    pub struct SelectWaker {
        flag: Mutex<bool>,
        cond: Condvar,
    }

    impl SelectWaker {
        fn new() -> Arc<Self> {
            Arc::new(Self { flag: Mutex::new(false), cond: Condvar::new() })
        }

        fn notify(&self) {
            let mut f = self.flag.lock().unwrap_or_else(|p| p.into_inner());
            *f = true;
            self.cond.notify_all();
        }

        /// Waits for a notification or the deadline; returns false on timeout.
        fn wait_until(&self, deadline: Option<Instant>) -> bool {
            let mut f = self.flag.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if *f {
                    *f = false;
                    return true;
                }
                match deadline {
                    None => {
                        f = self.cond.wait(f).unwrap_or_else(|p| p.into_inner());
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return false;
                        }
                        let (g, _) =
                            self.cond.wait_timeout(f, d - now).unwrap_or_else(|p| p.into_inner());
                        f = g;
                    }
                }
            }
        }
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        recv_cond: Condvar,
        wakers: Mutex<Vec<Weak<SelectWaker>>>,
    }

    impl<T> Shared<T> {
        fn wake_selects(&self) {
            let mut ws = self.wakers.lock().unwrap_or_else(|p| p.into_inner());
            ws.retain(|w| match w.upgrade() {
                Some(w) => {
                    w.notify();
                    true
                }
                None => false,
            });
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            recv_cond: Condvar::new(),
            wakers: Mutex::new(Vec::new()),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Creates a channel; the capacity bound is not enforced (see crate docs).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            {
                let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                inner.queue.push_back(value);
            }
            self.shared.recv_cond.notify_all();
            self.shared.wake_selects();
            Ok(())
        }

        /// Number of messages queued in the channel.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap_or_else(|p| p.into_inner()).queue.len()
        }

        /// Whether the channel holds no queued messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|p| p.into_inner()).senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = {
                let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
                inner.senders -= 1;
                inner.senders == 0
            };
            if last {
                self.shared.recv_cond.notify_all();
                self.shared.wake_selects();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.recv_cond.wait(inner).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .shared
                    .recv_cond
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                inner = g;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|p| p.into_inner());
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap_or_else(|p| p.into_inner()).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn register_waker(&self, waker: &Arc<SelectWaker>) {
            self.shared
                .wakers
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::downgrade(waker));
        }

        /// Ready check for select: a message, or a disconnect.
        fn poll(&self) -> Option<Result<T, RecvError>> {
            match self.try_recv() {
                Ok(v) => Some(Ok(v)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|p| p.into_inner()).receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap_or_else(|p| p.into_inner()).receivers -= 1;
        }
    }

    /// Which arm of a two-receiver select fired.
    pub enum Sel<T1, T2> {
        /// First receiver ready (message or disconnect).
        R1(Result<T1, RecvError>),
        /// Second receiver ready (message or disconnect).
        R2(Result<T2, RecvError>),
        /// The `default(timeout)` arm fired.
        Default,
    }

    /// Blocks until either receiver is ready (or `timeout`, if given).
    /// The first receiver has priority when both are ready.
    pub fn select2<T1, T2>(
        r1: &Receiver<T1>,
        r2: &Receiver<T2>,
        timeout: Option<Duration>,
    ) -> Sel<T1, T2> {
        let deadline = timeout.map(|t| Instant::now() + t);
        // Fast path before paying for waker registration.
        if let Some(res) = r1.poll() {
            return Sel::R1(res);
        }
        if let Some(res) = r2.poll() {
            return Sel::R2(res);
        }
        let waker = SelectWaker::new();
        r1.register_waker(&waker);
        r2.register_waker(&waker);
        loop {
            if let Some(res) = r1.poll() {
                return Sel::R1(res);
            }
            if let Some(res) = r2.poll() {
                return Sel::R2(res);
            }
            if !waker.wait_until(deadline) {
                return Sel::Default;
            }
        }
    }

    // Make the macro reachable as `crossbeam::channel::select!`.
    pub use crate::select;
}

/// Two-receiver `select!` with an optional `default(timeout)` arm — the only
/// shapes this workspace uses.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $p1:pat => $e1:expr,
        recv($r2:expr) -> $p2:pat => $e2:expr $(,)?
    ) => {
        match $crate::channel::select2(&$r1, &$r2, ::core::option::Option::None) {
            $crate::channel::Sel::R1(res) => {
                let $p1 = res;
                $e1
            }
            $crate::channel::Sel::R2(res) => {
                let $p2 = res;
                $e2
            }
            $crate::channel::Sel::Default => unreachable!("no default arm"),
        }
    };
    // A block arm needs no separating comma before `default`.
    (
        recv($r1:expr) -> $p1:pat => $e1:expr,
        recv($r2:expr) -> $p2:pat => $e2:block
        default($t:expr) => $e3:expr $(,)?
    ) => {
        $crate::select! {
            recv($r1) -> $p1 => $e1,
            recv($r2) -> $p2 => $e2,
            default($t) => $e3,
        }
    };
    (
        recv($r1:expr) -> $p1:pat => $e1:expr,
        recv($r2:expr) -> $p2:pat => $e2:expr,
        default($t:expr) => $e3:expr $(,)?
    ) => {
        match $crate::channel::select2(&$r1, &$r2, ::core::option::Option::Some($t)) {
            $crate::channel::Sel::R1(res) => {
                let $p1 = res;
                $e1
            }
            $crate::channel::Sel::R2(res) => {
                let $p2 = res;
                $e2
            }
            $crate::channel::Sel::Default => $e3,
        }
    };
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvTimeoutError, TryRecvError};
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn disconnect_detected_both_ways() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9); // queued message survives
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_elapses() {
        let (_tx, rx) = channel::unbounded::<u8>();
        let t0 = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Err(RecvTimeoutError::Timeout));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn blocked_recv_wakes_on_send() {
        let (tx, rx) = channel::unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn select_prefers_data_over_shutdown() {
        let (tx, rx) = channel::unbounded();
        let (_stx, srx) = channel::bounded::<()>(0);
        tx.send(5u8).unwrap();
        let got = select! {
            recv(rx) -> m => m.unwrap(),
            recv(srx) -> _ => unreachable!("shutdown not signalled"),
        };
        assert_eq!(got, 5);
    }

    #[test]
    fn select_fires_on_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        let (stx, srx) = channel::bounded::<()>(0);
        let t = std::thread::spawn(move || {
            select! {
                recv(rx) -> m => m.is_ok(),
                recv(srx) -> _ => false,
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(stx); // closing the shutdown channel readies its arm
        assert!(!t.join().unwrap());
        drop(tx);
    }

    #[test]
    fn select_default_times_out() {
        let (_tx, rx) = channel::unbounded::<u8>();
        let (_stx, srx) = channel::unbounded::<()>();
        let fired = select! {
            recv(rx) -> _ => false,
            recv(srx) -> _ => false,
            default(Duration::from_millis(15)) => true,
        };
        assert!(fired);
    }

    #[test]
    fn select_wakes_on_late_send() {
        let (tx, rx) = channel::unbounded();
        let (_stx, srx) = channel::unbounded::<()>();
        let t = std::thread::spawn(move || {
            select! {
                recv(rx) -> m => m.unwrap(),
                recv(srx) -> _ => 0u8,
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        tx.send(7u8).unwrap();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(1).unwrap();
        assert_eq!(rx2.recv().unwrap(), 1);
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err());
    }
}
