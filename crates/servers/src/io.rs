//! The input/output server (§4.3).
//!
//! "The IO server extends the domain of TABS to include the bitmap display
//! by restoring the screen contents after a failure, and by giving the
//! user a comfortable model of transaction-based input/output. … While a
//! transaction is in progress, the output is displayed in gray, to
//! indicate its tentative nature. If the transaction commits, the output
//! is redrawn in black. … If the transaction aborts, lines are drawn
//! through the output."
//!
//! The state trick is reproduced exactly: "When a transaction establishes
//! ownership of an area, the IO server uses `ExecuteTransaction` to write
//! *aborted* into a state object in the data structure for the area. The
//! IO server then has the client transaction lock the state object and set
//! it to contain *committed*. … The IO server can now determine the
//! transaction's current state by using the `IsObjectLocked` primitive",
//! because recovery resets the cell to *aborted* if the client transaction
//! aborts, and the old/new pair *aborted/committed* sits in the log.
//!
//! Output itself is written under server-owned top-level transactions
//! (`ExecuteTransaction`) so it persists even when the client transaction
//! later aborts — TABS's canonical non-recoverable action made sensible.
//!
//! The bitmap display is simulated as a recoverable character store with
//! an ASCII renderer; "input" arrives through an injection opcode standing
//! in for the keyboard.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use tabs_codec::{Decode, Encode, Reader, Writer};
use tabs_core::{AppHandle, Node, ObjectId};
use tabs_kernel::{SendRight, Tid, PAGE_SIZE};
use tabs_lock::StdMode;
use tabs_proto::ServerError;
use tabs_server_lib::{DataServer, OpCtx};

/// `ObtainIOarea` opcode.
pub const OP_OBTAIN: u32 = 1;
/// `DestroyIOarea` opcode.
pub const OP_DESTROY: u32 = 2;
/// `WriteToArea` opcode.
pub const OP_WRITE: u32 = 3;
/// `WritelnToArea` opcode.
pub const OP_WRITELN: u32 = 4;
/// `ReadCharFromArea` opcode.
pub const OP_READ_CHAR: u32 = 5;
/// `ReadLineFromArea` opcode.
pub const OP_READ_LINE: u32 = 6;
/// Renders the whole screen (the Figure 4-1 snapshot).
pub const OP_RENDER: u32 = 7;
/// Injects keyboard input for an area (the simulated keyboard).
pub const OP_INJECT: u32 = 8;
/// Structured per-line dump for tests.
pub const OP_LINES: u32 = 9;

/// Number of display areas ("Multiple input/output areas are maintained on
/// the screen, to allow for concurrent interaction with the user").
pub const MAX_AREAS: u64 = 4;
/// Ownership epochs remembered per area.
const EPOCHS: u64 = 8;
/// Lines per area.
const LINES: u64 = 32;
/// Bytes per line record.
const LINE_REC: u64 = 128;
/// Text payload per line.
const LINE_W: usize = 104;
/// Bytes per area on the recoverable segment.
const AREA_BYTES: u64 = PAGE_SIZE as u64 + LINES * LINE_REC;

/// Rendering state of a display line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AreaState {
    /// Gray: the owning transaction is still in progress.
    InProgress,
    /// Black: the owning transaction committed.
    Committed,
    /// Struck through: the owning transaction aborted.
    Aborted,
}

fn area_base(area: u64) -> u64 {
    area * AREA_BYTES
}

fn state_cell(ctx: &OpCtx<'_>, area: u64, epoch: u64) -> ObjectId {
    ctx.create_object_id(area_base(area) + 32 + (epoch % EPOCHS) * 8, 8)
}

struct IoShared {
    /// Pending keyboard input per area.
    input: Vec<VecDeque<String>>,
}

/// The I/O server.
pub struct IoServer {
    server: DataServer,
}

impl IoServer {
    /// Spawns the I/O server on `node`.
    pub fn spawn(node: &Node, name: &str) -> Result<Self, ServerError> {
        let pages = (MAX_AREAS * AREA_BYTES).div_ceil(PAGE_SIZE as u64) as u32;
        let seg = node.add_segment(&format!("{name}-segment"), pages);
        let server = DataServer::new(&node.deps(), node.server_config(name, seg))?;
        let shared = Arc::new(Mutex::new(IoShared {
            input: (0..MAX_AREAS).map(|_| VecDeque::new()).collect(),
        }));
        server.accept_requests(Arc::new(move |ctx, opcode, args| {
            dispatch(ctx, opcode, args, &shared)
        }));
        node.register_server(&server, name, "io", ObjectId::new(seg, 0, 8));
        Ok(Self { server })
    }

    /// A send right for callers.
    pub fn send_right(&self) -> SendRight {
        self.server.send_right()
    }
}

fn seg_read_u64(ctx: &OpCtx<'_>, off: u64) -> Result<u64, ServerError> {
    ctx.segment().read_u64(off).map_err(|e| ServerError::Storage(e.to_string()))
}

/// Logged single-word write (lock + pin/buffer + log).
fn logged_write_u64(ctx: &OpCtx<'_>, off: u64, v: u64) -> Result<(), ServerError> {
    let obj = ctx.create_object_id(off, 8);
    ctx.lock_object(obj, StdMode::Exclusive)?;
    ctx.pin_and_buffer(obj)?;
    ctx.write_raw(obj, &v.to_le_bytes())?;
    ctx.log_and_unpin(obj)?;
    Ok(())
}

fn dispatch(
    ctx: &OpCtx<'_>,
    opcode: u32,
    args: &[u8],
    shared: &Mutex<IoShared>,
) -> Result<Vec<u8>, ServerError> {
    let mut r = Reader::new(args);
    match opcode {
        OP_OBTAIN => obtain(ctx),
        OP_DESTROY => {
            let area = decode_area(&mut r)?;
            destroy(ctx, area)
        }
        OP_WRITE | OP_WRITELN => {
            let area = decode_area(&mut r)?;
            let text =
                String::decode(&mut r).map_err(|e| ServerError::BadRequest(e.to_string()))?;
            write_line(ctx, area, &text, 0)
        }
        OP_READ_CHAR | OP_READ_LINE => {
            let area = decode_area(&mut r)?;
            let line = {
                let mut s = shared.lock();
                s.input[area as usize].pop_front()
            };
            let mut line = line.ok_or(ServerError::Other("no pending input".into()))?;
            if opcode == OP_READ_CHAR {
                line.truncate(line.chars().next().map(|c| c.len_utf8()).unwrap_or(0));
            }
            // Echo the consumed input to the display ("The rectangles drawn
            // around user input indicate that the characters have been read
            // by the application").
            write_line(ctx, area, &line, 1)?;
            let mut w = Writer::new();
            line.encode(&mut w);
            Ok(w.into_vec())
        }
        OP_RENDER => {
            let text = render(ctx)?;
            let mut w = Writer::new();
            text.encode(&mut w);
            Ok(w.into_vec())
        }
        OP_INJECT => {
            let area = decode_area(&mut r)?;
            let text =
                String::decode(&mut r).map_err(|e| ServerError::BadRequest(e.to_string()))?;
            shared.lock().input[area as usize].push_back(text);
            Ok(Vec::new())
        }
        OP_LINES => {
            let area = decode_area(&mut r)?;
            lines_of(ctx, area)
        }
        other => Err(ServerError::BadRequest(format!("opcode {other}"))),
    }
}

fn decode_area(r: &mut Reader<'_>) -> Result<u64, ServerError> {
    let area = u64::decode(r).map_err(|e| ServerError::BadRequest(e.to_string()))?;
    if area >= MAX_AREAS {
        return Err(ServerError::BadRequest(format!("area {area} out of range")));
    }
    Ok(area)
}

/// `ObtainIOarea`: allocate an area to the calling transaction and arm the
/// aborted/committed state object.
fn obtain(ctx: &OpCtx<'_>) -> Result<Vec<u8>, ServerError> {
    // Find a free area (monitor-serialized scan).
    let mut chosen = None;
    for area in 0..MAX_AREAS {
        if seg_read_u64(ctx, area_base(area))? == 0 {
            chosen = Some(area);
            break;
        }
    }
    let area = chosen.ok_or(ServerError::Other("no free io areas".into()))?;
    let epoch = seg_read_u64(ctx, area_base(area) + 8)? + 1;

    // Under a server-owned transaction: mark allocated, bump the epoch,
    // and write *aborted* (0) into the epoch's state object.
    ctx.execute_transaction(|inner| {
        logged_write_u64(inner, area_base(area), 1)?;
        logged_write_u64(inner, area_base(area) + 8, epoch)?;
        let cell = state_cell(inner, area, epoch);
        inner.lock_object(cell, StdMode::Exclusive)?;
        inner.pin_and_buffer(cell)?;
        inner.write_raw(cell, &0u64.to_le_bytes())?;
        inner.log_and_unpin(cell)?;
        Ok(Vec::new())
    })?;

    // Now the *client* transaction locks the state object and sets it to
    // *committed* (1): the old/new pair aborted/committed is in the log
    // under the client tid, and the lock makes IsObjectLocked the
    // in-progress test.
    let cell = state_cell(ctx, area, epoch);
    ctx.lock_object(cell, StdMode::Exclusive)?;
    ctx.pin_and_buffer(cell)?;
    ctx.write_raw(cell, &1u64.to_le_bytes())?;
    ctx.log_and_unpin(cell)?;

    let mut w = Writer::new();
    area.encode(&mut w);
    Ok(w.into_vec())
}

fn destroy(ctx: &OpCtx<'_>, area: u64) -> Result<Vec<u8>, ServerError> {
    ctx.execute_transaction(|inner| {
        logged_write_u64(inner, area_base(area), 0)?;
        logged_write_u64(inner, area_base(area) + 16, 0)?; // next_line
        Ok(Vec::new())
    })?;
    Ok(Vec::new())
}

/// Appends one display line under a server-owned top-level transaction so
/// it survives a later client abort ("The IO server displays all output as
/// it occurs").
fn write_line(ctx: &OpCtx<'_>, area: u64, text: &str, kind: u64) -> Result<Vec<u8>, ServerError> {
    if seg_read_u64(ctx, area_base(area))? == 0 {
        return Err(ServerError::BadRequest(format!("area {area} not allocated")));
    }
    let epoch = seg_read_u64(ctx, area_base(area) + 8)?;
    ctx.execute_transaction(|inner| {
        let next = seg_read_u64(inner, area_base(area) + 16)?;
        if next >= LINES {
            return Err(ServerError::Other("area full".into()));
        }
        let base = area_base(area) + PAGE_SIZE as u64 + next * LINE_REC;
        let obj = inner.create_object_id(base, LINE_REC as u32);
        inner.lock_object(obj, StdMode::Exclusive)?;
        inner.pin_and_buffer(obj)?;
        let mut rec = vec![0u8; LINE_REC as usize];
        rec[..8].copy_from_slice(&epoch.to_le_bytes());
        rec[8..16].copy_from_slice(&kind.to_le_bytes());
        let bytes = text.as_bytes();
        let n = bytes.len().min(LINE_W);
        rec[16..24].copy_from_slice(&(n as u64).to_le_bytes());
        rec[24..24 + n].copy_from_slice(&bytes[..n]);
        inner.write_raw(obj, &rec)?;
        inner.log_and_unpin(obj)?;
        logged_write_u64(inner, area_base(area) + 16, next + 1)?;
        Ok(Vec::new())
    })
}

/// Determines the display state of an epoch via the state-object trick.
fn epoch_state(ctx: &OpCtx<'_>, area: u64, epoch: u64) -> Result<AreaState, ServerError> {
    let cell = state_cell(ctx, area, epoch);
    // "If the state object is locked, the client transaction is still in
    // progress. If the object is no longer locked, then the transaction
    // has finished" — committed or reset to aborted by recovery.
    if ctx.is_object_locked(cell) {
        return Ok(AreaState::InProgress);
    }
    let v = seg_read_u64(ctx, cell.offset)?;
    Ok(if v == 1 { AreaState::Committed } else { AreaState::Aborted })
}

fn line_record(ctx: &OpCtx<'_>, area: u64, line: u64) -> Result<(u64, u64, String), ServerError> {
    let base = area_base(area) + PAGE_SIZE as u64 + line * LINE_REC;
    let rec = ctx
        .segment()
        .read_vec(base, LINE_REC as usize)
        .map_err(|e| ServerError::Storage(e.to_string()))?;
    let epoch = u64::from_le_bytes(rec[..8].try_into().unwrap());
    let kind = u64::from_le_bytes(rec[8..16].try_into().unwrap());
    let len = u64::from_le_bytes(rec[16..24].try_into().unwrap()) as usize;
    let len = len.min(LINE_W);
    let text = String::from_utf8_lossy(&rec[24..24 + len]).into_owned();
    Ok((epoch, kind, text))
}

/// Renders the whole screen as ASCII, in the style of Figure 4-1: plain =
/// black (committed), `░` prefix = gray (in progress), `~…~` = struck
/// through (aborted), `[…]` = input that was read by the application.
fn render(ctx: &OpCtx<'_>) -> Result<String, ServerError> {
    let mut out = String::new();
    for area in 0..MAX_AREAS {
        if seg_read_u64(ctx, area_base(area))? == 0 {
            continue;
        }
        out.push_str(&format!("=== area {area} ===\n"));
        let next = seg_read_u64(ctx, area_base(area) + 16)?;
        for line in 0..next.min(LINES) {
            let (epoch, kind, text) = line_record(ctx, area, line)?;
            let state = epoch_state(ctx, area, epoch)?;
            let rendered = match (kind, state) {
                (1, _) => format!("[{text}]"),
                (_, AreaState::InProgress) => format!("\u{2591} {text}"),
                (_, AreaState::Committed) => format!("  {text}"),
                (_, AreaState::Aborted) => format!("~ {text} ~"),
            };
            out.push_str(&rendered);
            out.push('\n');
        }
    }
    Ok(out)
}

fn lines_of(ctx: &OpCtx<'_>, area: u64) -> Result<Vec<u8>, ServerError> {
    let next = seg_read_u64(ctx, area_base(area) + 16)?;
    let mut w = Writer::new();
    w.put_varint(next.min(LINES));
    for line in 0..next.min(LINES) {
        let (epoch, kind, text) = line_record(ctx, area, line)?;
        let state = match epoch_state(ctx, area, epoch)? {
            AreaState::Aborted => 0u8,
            AreaState::Committed => 1,
            AreaState::InProgress => 2,
        };
        w.put_u8(state);
        w.put_u8(kind as u8);
        text.encode(&mut w);
    }
    Ok(w.into_vec())
}

/// Client stub for the I/O server.
#[derive(Clone)]
pub struct IoClient {
    app: AppHandle,
    port: SendRight,
}

impl IoClient {
    /// Creates a stub talking to `port` via `app`.
    pub fn new(app: AppHandle, port: SendRight) -> Self {
        Self { app, port }
    }

    fn area_args(area: u64) -> Writer {
        let mut w = Writer::new();
        area.encode(&mut w);
        w
    }

    /// `ObtainIOarea`.
    pub fn obtain_area(&self, tid: Tid) -> Result<u64, tabs_app_lib::AppError> {
        let out = self.app.call(&self.port, tid, OP_OBTAIN, Vec::new())?;
        u64::decode_all(&out).map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))
    }

    /// `DestroyIOarea`.
    pub fn destroy_area(&self, tid: Tid, area: u64) -> Result<(), tabs_app_lib::AppError> {
        self.app.call(&self.port, tid, OP_DESTROY, Self::area_args(area).into_vec())?;
        Ok(())
    }

    /// `WritelnToArea`.
    pub fn writeln(&self, tid: Tid, area: u64, text: &str) -> Result<(), tabs_app_lib::AppError> {
        let mut w = Self::area_args(area);
        text.to_string().encode(&mut w);
        self.app.call(&self.port, tid, OP_WRITELN, w.into_vec())?;
        Ok(())
    }

    /// `ReadLineFromArea`.
    pub fn read_line(&self, tid: Tid, area: u64) -> Result<String, tabs_app_lib::AppError> {
        let out = self.app.call(&self.port, tid, OP_READ_LINE, Self::area_args(area).into_vec())?;
        String::decode_all(&out).map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))
    }

    /// `ReadCharFromArea`.
    pub fn read_char(&self, tid: Tid, area: u64) -> Result<String, tabs_app_lib::AppError> {
        let out = self.app.call(&self.port, tid, OP_READ_CHAR, Self::area_args(area).into_vec())?;
        String::decode_all(&out).map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))
    }

    /// Injects keyboard input (the simulated user typing).
    pub fn inject(&self, area: u64, text: &str) -> Result<(), tabs_app_lib::AppError> {
        let mut w = Self::area_args(area);
        text.to_string().encode(&mut w);
        self.app.call(&self.port, Tid::NULL, OP_INJECT, w.into_vec())?;
        Ok(())
    }

    /// Renders the screen (Figure 4-1 style).
    pub fn render(&self) -> Result<String, tabs_app_lib::AppError> {
        let out = self.app.call(&self.port, Tid::NULL, OP_RENDER, Vec::new())?;
        String::decode_all(&out).map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))
    }

    /// Structured line dump: `(state, kind, text)` per line.
    pub fn lines(
        &self,
        area: u64,
    ) -> Result<Vec<(AreaState, u64, String)>, tabs_app_lib::AppError> {
        let out =
            self.app.call(&self.port, Tid::NULL, OP_LINES, Self::area_args(area).into_vec())?;
        let mut r = Reader::new(&out);
        let n = r.get_varint().map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))?;
        let mut v = Vec::new();
        for _ in 0..n {
            let state = match r.get_u8().map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))? {
                0 => AreaState::Aborted,
                1 => AreaState::Committed,
                _ => AreaState::InProgress,
            };
            let kind =
                u64::from(r.get_u8().map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))?);
            let text =
                String::decode(&mut r).map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))?;
            v.push((state, kind, text));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_core::{Cluster, NodeId};

    fn rig() -> (Arc<Cluster>, tabs_core::Node, IoClient, AppHandle) {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let io = IoServer::spawn(&node, "io").unwrap();
        node.recover().unwrap();
        let app = node.app();
        let client = IoClient::new(app.clone(), io.send_right());
        (cluster, node, client, app)
    }

    #[test]
    fn committed_output_turns_black() {
        let (_c, node, io, app) = rig();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let area = io.obtain_area(t).unwrap();
        io.writeln(t, area, "deposit 35").unwrap();
        // While in progress: gray.
        let lines = io.lines(area).unwrap();
        assert_eq!(lines[0].0, AreaState::InProgress);
        assert!(io.render().unwrap().contains("\u{2591} deposit 35"));
        // After commit: black.
        assert!(app.end_transaction(t).unwrap().is_committed());
        let lines = io.lines(area).unwrap();
        assert_eq!(lines[0], (AreaState::Committed, 0, "deposit 35".into()));
        assert!(io.render().unwrap().contains("  deposit 35"));
        node.shutdown();
    }

    #[test]
    fn aborted_output_is_struck_through_but_visible() {
        let (_c, node, io, app) = rig();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let area = io.obtain_area(t).unwrap();
        io.writeln(t, area, "withdraw 80").unwrap();
        app.abort_transaction(t).unwrap();
        // "This is preferable to making the output disappear."
        let lines = io.lines(area).unwrap();
        assert_eq!(lines[0], (AreaState::Aborted, 0, "withdraw 80".into()));
        assert!(io.render().unwrap().contains("~ withdraw 80 ~"));
        node.shutdown();
    }

    #[test]
    fn read_line_echoes_input_in_rectangles() {
        let (_c, node, io, app) = rig();
        io.inject(0, "35").unwrap();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let area = io.obtain_area(t).unwrap();
        assert_eq!(area, 0);
        let input = io.read_line(t, area).unwrap();
        assert_eq!(input, "35");
        assert!(app.end_transaction(t).unwrap().is_committed());
        assert!(io.render().unwrap().contains("[35]"));
        node.shutdown();
    }

    #[test]
    fn read_char_takes_first_char() {
        let (_c, node, io, app) = rig();
        io.inject(0, "yes").unwrap();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let area = io.obtain_area(t).unwrap();
        assert_eq!(io.read_char(t, area).unwrap(), "y");
        app.end_transaction(t).unwrap();
        node.shutdown();
    }

    #[test]
    fn screen_restored_after_crash_with_aborted_epoch() {
        // Figure 4-1, area two: the node failed during a transaction; after
        // restart the screen shows the output struck through.
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let io = IoServer::spawn(&node, "io").unwrap();
        node.recover().unwrap();
        let app = node.app();
        let client = IoClient::new(app.clone(), io.send_right());

        // A committed interaction first.
        let t1 = app.begin_transaction(Tid::NULL).unwrap();
        let a = client.obtain_area(t1).unwrap();
        client.writeln(t1, a, "deposit 35 -> ok").unwrap();
        assert!(app.end_transaction(t1).unwrap().is_committed());

        // A second area with an interaction cut short by the crash.
        let t2 = app.begin_transaction(Tid::NULL).unwrap();
        let b = client.obtain_area(t2).unwrap();
        client.writeln(t2, b, "withdraw 80").unwrap();
        node.rm.force(None).unwrap();
        drop(io);
        node.crash();

        let node = cluster.boot_node(NodeId(1));
        let io = IoServer::spawn(&node, "io").unwrap();
        node.recover().unwrap();
        let app = node.app();
        let client = IoClient::new(app.clone(), io.send_right());
        let screen = client.render().unwrap();
        assert!(screen.contains("  deposit 35 -> ok"), "committed stayed black:\n{screen}");
        assert!(screen.contains("~ withdraw 80 ~"), "crashed txn struck through:\n{screen}");
        node.shutdown();
    }

    #[test]
    fn destroy_frees_area_for_reuse() {
        let (_c, node, io, app) = rig();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let a = io.obtain_area(t).unwrap();
        io.destroy_area(t, a).unwrap();
        let b = io.obtain_area(t).unwrap();
        assert_eq!(a, b, "freed area was reused");
        app.end_transaction(t).unwrap();
        node.shutdown();
    }

    #[test]
    fn concurrent_areas_for_concurrent_transactions() {
        let (_c, node, io, app) = rig();
        let t1 = app.begin_transaction(Tid::NULL).unwrap();
        let t2 = app.begin_transaction(Tid::NULL).unwrap();
        let a1 = io.obtain_area(t1).unwrap();
        let a2 = io.obtain_area(t2).unwrap();
        assert_ne!(a1, a2);
        io.writeln(t1, a1, "one").unwrap();
        io.writeln(t2, a2, "two").unwrap();
        app.end_transaction(t1).unwrap();
        app.abort_transaction(t2).unwrap();
        assert_eq!(io.lines(a1).unwrap()[0].0, AreaState::Committed);
        assert_eq!(io.lines(a2).unwrap()[0].0, AreaState::Aborted);
        node.shutdown();
    }

    #[test]
    fn no_pending_input_is_an_error() {
        let (_c, node, io, app) = rig();
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let a = io.obtain_area(t).unwrap();
        assert!(io.read_line(t, a).is_err());
        app.abort_transaction(t).unwrap();
        node.shutdown();
    }
}
