//! Inter-node wire formats: session frames and datagram envelopes.

use tabs_codec::{decode_seq, encode_seq, Decode, DecodeError, DecodeRef, Encode, Reader, Writer};
use tabs_kernel::{NodeId, ObjectId, PortId};

use crate::beat::BeatMsg;
use crate::commit::CommitMsg;
use crate::detect::DetectMsg;
use crate::rpc::{Request, RequestRef, ServerError};
use crate::shard::ShardMsg;

/// One frame on a Communication Manager session (remote procedure calls
/// ride sessions, §3.2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFrame {
    /// A forwarded operation request for a data server on the receiving
    /// node. The receiving Communication Manager delivers it to
    /// `target_port` and relays the response.
    Call {
        /// Correlates the eventual [`SessionFrame::Reply`].
        call_id: u64,
        /// The real (remote) port of the destination data server.
        target_port: PortId,
        /// The operation request.
        request: Request,
    },
    /// The response to an earlier [`SessionFrame::Call`].
    Reply {
        /// Correlation id from the call.
        call_id: u64,
        /// Operation result.
        result: Result<Vec<u8>, ServerError>,
    },
}

impl Encode for SessionFrame {
    fn encode(&self, w: &mut Writer) {
        match self {
            SessionFrame::Call { call_id, target_port, request } => {
                w.put_u8(0);
                call_id.encode(w);
                target_port.encode(w);
                request.encode(w);
            }
            SessionFrame::Reply { call_id, result } => {
                w.put_u8(1);
                call_id.encode(w);
                match result {
                    Ok(v) => {
                        w.put_u8(0);
                        v.encode(w);
                    }
                    Err(e) => {
                        w.put_u8(1);
                        e.encode(w);
                    }
                }
            }
        }
    }
}

impl Decode for SessionFrame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(SessionFrame::Call {
                call_id: u64::decode(r)?,
                target_port: PortId::decode(r)?,
                request: Request::decode(r)?,
            }),
            1 => {
                let call_id = u64::decode(r)?;
                let result = match r.get_u8()? {
                    0 => Ok(Vec::<u8>::decode(r)?),
                    1 => Err(ServerError::decode(r)?),
                    _ => return Err(DecodeError::Invalid("SessionFrame result")),
                };
                Ok(SessionFrame::Reply { call_id, result })
            }
            _ => Err(DecodeError::Invalid("SessionFrame tag")),
        }
    }
}

/// A borrowed view of a [`SessionFrame`] decoded in place from a receive
/// buffer. The call's request bytes and the reply's result payload stay
/// in the buffer — the Communication Manager's relay loop forwards or
/// re-frames them without the per-message copies [`SessionFrame`]'s owned
/// decode performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFrameRef<'a> {
    /// Borrowed view of [`SessionFrame::Call`].
    Call {
        /// Correlates the eventual reply.
        call_id: u64,
        /// The real (remote) port of the destination data server.
        target_port: PortId,
        /// The operation request, borrowed from the receive buffer.
        request: RequestRef<'a>,
    },
    /// Borrowed view of [`SessionFrame::Reply`]. Error results are owned:
    /// they are rare and carry short strings.
    Reply {
        /// Correlation id from the call.
        call_id: u64,
        /// Operation result; the success payload borrows the buffer.
        result: Result<&'a [u8], ServerError>,
    },
}

impl<'a> DecodeRef<'a> for SessionFrameRef<'a> {
    fn decode_ref(r: &mut Reader<'a>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(SessionFrameRef::Call {
                call_id: u64::decode(r)?,
                target_port: PortId::decode(r)?,
                request: RequestRef::decode_ref(r)?,
            }),
            1 => {
                let call_id = u64::decode(r)?;
                let result = match r.get_u8()? {
                    0 => Ok(<&[u8]>::decode_ref(r)?),
                    1 => Err(ServerError::decode(r)?),
                    _ => return Err(DecodeError::Invalid("SessionFrame result")),
                };
                Ok(SessionFrameRef::Reply { call_id, result })
            }
            _ => Err(DecodeError::Invalid("SessionFrame tag")),
        }
    }
}

/// A name-service entry: `<port, LogicalObjectIdentifier>` plus metadata
/// (Table 3-3: `Register(Name, Type, Port, ObjectID)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameEntry {
    /// Registered name.
    pub name: String,
    /// Abstract-type name (e.g. "b-tree", "weak-queue").
    pub type_name: String,
    /// Port of the data server implementing the object.
    pub port: PortId,
    /// Logical object identifier within that server.
    pub object: ObjectId,
}

impl Encode for NameEntry {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.type_name.encode(w);
        self.port.encode(w);
        self.object.encode(w);
    }
}

impl Decode for NameEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NameEntry {
            name: String::decode(r)?,
            type_name: String::decode(r)?,
            port: PortId::decode(r)?,
            object: ObjectId::decode(r)?,
        })
    }
}

/// Name-service broadcast traffic (§3.2.5: "Whenever the Name Server is
/// asked about a name it does not recognize, it broadcasts a name lookup
/// request to all other Name Servers").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsMsg {
    /// Broadcast request for `name`; answers go to `reply_to`.
    LookupRequest {
        /// Name being resolved.
        name: String,
        /// Node that asked.
        reply_to: NodeId,
    },
    /// Positive response with the responder's matching entries.
    LookupResponse {
        /// Name resolved.
        name: String,
        /// Matching entries on the responding node.
        entries: Vec<NameEntry>,
    },
}

impl Encode for NsMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            NsMsg::LookupRequest { name, reply_to } => {
                w.put_u8(0);
                name.encode(w);
                reply_to.encode(w);
            }
            NsMsg::LookupResponse { name, entries } => {
                w.put_u8(1);
                name.encode(w);
                encode_seq(entries, w);
            }
        }
    }
}

impl Decode for NsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => {
                Ok(NsMsg::LookupRequest { name: String::decode(r)?, reply_to: NodeId::decode(r)? })
            }
            1 => Ok(NsMsg::LookupResponse { name: String::decode(r)?, entries: decode_seq(r)? }),
            _ => Err(DecodeError::Invalid("NsMsg tag")),
        }
    }
}

/// Envelope for every inter-node datagram: transaction management, name
/// service, or deadlock detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datagram {
    /// Two-phase-commit traffic for the Transaction Manager.
    Commit(CommitMsg),
    /// Name-lookup traffic for the Name Server.
    Ns(NsMsg),
    /// Deadlock-detection probes, confirmations and victim broadcasts.
    Detect(DetectMsg),
    /// Failure-detector heartbeats and probes.
    Beat(BeatMsg),
    /// Shard-map gossip for sharded services.
    Shard(ShardMsg),
}

impl Encode for Datagram {
    fn encode(&self, w: &mut Writer) {
        match self {
            Datagram::Commit(m) => {
                w.put_u8(0);
                m.encode(w);
            }
            Datagram::Ns(m) => {
                w.put_u8(1);
                m.encode(w);
            }
            Datagram::Detect(m) => {
                w.put_u8(2);
                m.encode(w);
            }
            Datagram::Beat(m) => {
                w.put_u8(3);
                m.encode(w);
            }
            Datagram::Shard(m) => {
                w.put_u8(4);
                m.encode(w);
            }
        }
    }
}

impl Decode for Datagram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(Datagram::Commit(CommitMsg::decode(r)?)),
            1 => Ok(Datagram::Ns(NsMsg::decode(r)?)),
            2 => Ok(Datagram::Detect(DetectMsg::decode(r)?)),
            3 => Ok(Datagram::Beat(BeatMsg::decode(r)?)),
            4 => Ok(Datagram::Shard(ShardMsg::decode(r)?)),
            _ => Err(DecodeError::Invalid("Datagram tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_kernel::SegmentId;
    use tabs_kernel::Tid;

    fn port() -> PortId {
        PortId { node: NodeId(2), index: 7 }
    }

    fn oid() -> ObjectId {
        ObjectId::new(SegmentId { node: NodeId(2), index: 0 }, 64, 16)
    }

    #[test]
    fn session_frames_roundtrip() {
        let call = SessionFrame::Call {
            call_id: 12,
            target_port: port(),
            request: Request {
                tid: Tid { node: NodeId(1), incarnation: 1, seq: 3 },
                opcode: 5,
                args: vec![1, 2, 3],
                deadline: None,
            },
        };
        assert_eq!(SessionFrame::decode_all(&call.encode_to_vec()).unwrap(), call);
        let ok = SessionFrame::Reply { call_id: 12, result: Ok(vec![4]) };
        assert_eq!(SessionFrame::decode_all(&ok.encode_to_vec()).unwrap(), ok);
        let err = SessionFrame::Reply { call_id: 13, result: Err(ServerError::LockTimeout) };
        assert_eq!(SessionFrame::decode_all(&err.encode_to_vec()).unwrap(), err);
    }

    #[test]
    fn session_frame_ref_agrees_with_owned_decode() {
        let request = Request {
            tid: Tid { node: NodeId(1), incarnation: 1, seq: 3 },
            opcode: 5,
            args: vec![1, 2, 3],
            deadline: None,
        };
        let call = SessionFrame::Call { call_id: 12, target_port: port(), request };
        let buf = call.encode_to_vec();
        match SessionFrameRef::decode_ref_all(&buf).unwrap() {
            SessionFrameRef::Call { call_id, target_port, request } => {
                assert_eq!(call_id, 12);
                assert_eq!(target_port, port());
                assert_eq!(request.opcode, 5);
                assert_eq!(request.args, &[1, 2, 3]);
                // The request's raw bytes are the frame's trailing suffix:
                // a relay can forward them without re-encoding.
                assert_eq!(request.raw, &buf[buf.len() - request.raw.len()..]);
                assert_eq!(request.raw.as_ptr(), buf[buf.len() - request.raw.len()..].as_ptr());
            }
            other => panic!("expected Call, got {other:?}"),
        }

        let ok = SessionFrame::Reply { call_id: 12, result: Ok(vec![4, 5]) };
        let buf = ok.encode_to_vec();
        match SessionFrameRef::decode_ref_all(&buf).unwrap() {
            SessionFrameRef::Reply { call_id, result } => {
                assert_eq!(call_id, 12);
                assert_eq!(result.unwrap(), &[4, 5]);
            }
            other => panic!("expected Reply, got {other:?}"),
        }

        let err = SessionFrame::Reply { call_id: 13, result: Err(ServerError::LockTimeout) };
        let buf = err.encode_to_vec();
        match SessionFrameRef::decode_ref_all(&buf).unwrap() {
            SessionFrameRef::Reply { call_id, result } => {
                assert_eq!(call_id, 13);
                assert_eq!(result.unwrap_err(), ServerError::LockTimeout);
            }
            other => panic!("expected Reply, got {other:?}"),
        }
    }

    #[test]
    fn ns_messages_roundtrip() {
        let req = NsMsg::LookupRequest { name: "dir".into(), reply_to: NodeId(1) };
        assert_eq!(NsMsg::decode_all(&req.encode_to_vec()).unwrap(), req);
        let resp = NsMsg::LookupResponse {
            name: "dir".into(),
            entries: vec![NameEntry {
                name: "dir".into(),
                type_name: "b-tree".into(),
                port: port(),
                object: oid(),
            }],
        };
        assert_eq!(NsMsg::decode_all(&resp.encode_to_vec()).unwrap(), resp);
    }

    #[test]
    fn datagram_envelope_roundtrip() {
        let d = Datagram::Commit(CommitMsg::Prepare {
            tid: Tid { node: NodeId(1), incarnation: 1, seq: 3 },
            merged: vec![],
        });
        assert_eq!(Datagram::decode_all(&d.encode_to_vec()).unwrap(), d);
        let d = Datagram::Ns(NsMsg::LookupRequest { name: "x".into(), reply_to: NodeId(9) });
        assert_eq!(Datagram::decode_all(&d.encode_to_vec()).unwrap(), d);
        let d = Datagram::Detect(DetectMsg::Probe {
            origin: NodeId(1),
            round: 4,
            path: vec![Tid { node: NodeId(1), incarnation: 1, seq: 3 }],
        });
        assert_eq!(Datagram::decode_all(&d.encode_to_vec()).unwrap(), d);
        let d = Datagram::Beat(BeatMsg::Ping { from: NodeId(1), seq: 5 });
        assert_eq!(Datagram::decode_all(&d.encode_to_vec()).unwrap(), d);
        let d =
            Datagram::Shard(ShardMsg::Publish { service: "bank".into(), version: 2, map: vec![7] });
        assert_eq!(Datagram::decode_all(&d.encode_to_vec()).unwrap(), d);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Datagram::decode_all(&[9, 9, 9]).is_err());
        assert!(SessionFrame::decode_all(&[]).is_err());
    }
}
