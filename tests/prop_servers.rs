//! Property-based testing of the weak queue and B-tree servers against
//! reference models, including transaction aborts.

use std::collections::VecDeque;

use proptest::prelude::*;

use tabs_core::{Cluster, NodeId, Tid};
use tabs_servers::{BTreeClient, BTreeServer, WeakQueueClient, WeakQueueServer};

/// One step of a weak-queue workout.
#[derive(Debug, Clone)]
enum QOp {
    /// Enqueue a value; commit the transaction iff the flag is set.
    Enqueue(i64, bool),
    /// Dequeue; commit iff the flag is set (abort returns the element).
    Dequeue(bool),
    /// Check emptiness against the model.
    IsEmpty,
}

fn qop_strategy() -> impl Strategy<Value = QOp> {
    prop_oneof![
        (any::<i16>(), any::<bool>()).prop_map(|(v, c)| QOp::Enqueue(i64::from(v), c)),
        any::<bool>().prop_map(QOp::Dequeue),
        Just(QOp::IsEmpty),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// The weak queue behaves like a FIFO under sequential single-client
    /// use, with aborted enqueues invisible and aborted dequeues undone.
    #[test]
    fn weak_queue_matches_model(ops in proptest::collection::vec(qop_strategy(), 1..25)) {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let q = WeakQueueServer::spawn(&node, "q", 64).unwrap();
        node.recover().unwrap();
        let app = node.app();
        let client = WeakQueueClient::new(app.clone(), q.send_right());
        let mut model: VecDeque<i64> = VecDeque::new();

        for op in ops {
            match op {
                QOp::Enqueue(v, commit) => {
                    let t = app.begin_transaction(Tid::NULL).unwrap();
                    // Capacity 64 > max ops: enqueue never sees Full.
                    client.enqueue(t, v).unwrap();
                    if commit {
                        prop_assert!(app.end_transaction(t).unwrap().is_committed());
                        model.push_back(v);
                    } else {
                        app.abort_transaction(t).unwrap();
                    }
                }
                QOp::Dequeue(commit) => {
                    let t = app.begin_transaction(Tid::NULL).unwrap();
                    let got = client.dequeue(t).unwrap();
                    prop_assert_eq!(got, model.front().copied(), "dequeue sees model front");
                    if commit {
                        prop_assert!(app.end_transaction(t).unwrap().is_committed());
                        if got.is_some() {
                            model.pop_front();
                        }
                    } else {
                        // Abort: the element must come back.
                        app.abort_transaction(t).unwrap();
                    }
                }
                QOp::IsEmpty => {
                    let t = app.begin_transaction(Tid::NULL).unwrap();
                    let e = client.is_empty(t).unwrap();
                    app.end_transaction(t).unwrap();
                    prop_assert_eq!(e, model.is_empty());
                }
            }
        }
        node.shutdown();
    }
}

/// One step of a directory workout.
#[derive(Debug, Clone)]
enum DOp {
    Put(u8, u8),
    Delete(u8),
    Lookup(u8),
    /// A batch of puts that is aborted wholesale.
    AbortedBatch(Vec<(u8, u8)>),
}

fn dop_strategy() -> impl Strategy<Value = DOp> {
    prop_oneof![
        (0u8..20, any::<u8>()).prop_map(|(k, v)| DOp::Put(k, v)),
        (0u8..20).prop_map(DOp::Delete),
        (0u8..20).prop_map(DOp::Lookup),
        proptest::collection::vec((0u8..20, any::<u8>()), 1..5).prop_map(DOp::AbortedBatch),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("key-{k:02}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// The B-tree matches a `BTreeMap` model under random puts, deletes,
    /// lookups and aborted batches, and its listing stays sorted.
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(dop_strategy(), 1..20)) {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let bt = BTreeServer::spawn(&node, "d", 128).unwrap();
        node.recover().unwrap();
        let app = node.app();
        let client = BTreeClient::new(app.clone(), bt.send_right());
        let mut model: std::collections::BTreeMap<Vec<u8>, Vec<u8>> =
            std::collections::BTreeMap::new();

        for op in ops {
            match op {
                DOp::Put(k, v) => {
                    app.run(|t| client.put(t, &key(k), &[v])).unwrap();
                    model.insert(key(k), vec![v]);
                }
                DOp::Delete(k) => {
                    let t = app.begin_transaction(Tid::NULL).unwrap();
                    let r = client.delete(t, &key(k));
                    prop_assert_eq!(r.is_ok(), model.contains_key(&key(k)));
                    if r.is_ok() {
                        prop_assert!(app.end_transaction(t).unwrap().is_committed());
                        model.remove(&key(k));
                    } else {
                        app.abort_transaction(t).unwrap();
                    }
                }
                DOp::Lookup(k) => {
                    let t = app.begin_transaction(Tid::NULL).unwrap();
                    let got = client.lookup(t, &key(k)).unwrap();
                    app.end_transaction(t).unwrap();
                    prop_assert_eq!(got.as_deref(), model.get(&key(k)).map(|v| v.as_slice()));
                }
                DOp::AbortedBatch(kvs) => {
                    let t = app.begin_transaction(Tid::NULL).unwrap();
                    for (k, v) in &kvs {
                        let _ = client.put(t, &key(*k), &[*v]);
                    }
                    app.abort_transaction(t).unwrap();
                    // Model untouched: the whole batch vanished.
                }
            }
        }
        // Final listing equals the model, in order.
        let t = app.begin_transaction(Tid::NULL).unwrap();
        let listed = client.list(t).unwrap();
        app.end_transaction(t).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(listed, expect);
        node.shutdown();
    }
}
