//! Kill-mid-migration sweep: for every `shard.migrate.*` crash point the
//! victim — the migration's source node, then its destination node — is
//! killed the instant the engine reaches the point, while transfers flow
//! through the shard router. After reboot and recovery the oracle checks
//! conservation (no write lost or doubly applied, no half-applied shard
//! copy), durability of reported-committed transfers, drained lock
//! tables, and idempotent re-recovery.

use proptest::prelude::*;

use tabs_chaos::{ChaosRunner, MIGRATION_POINTS};

/// A fixed-seed full sweep: both victims at every migration crash point,
/// and every registered point actually fires.
#[test]
fn migration_sweep_covers_every_point() {
    let runner = ChaosRunner::new(20260809);
    let killed = runner.sweep_migration().unwrap_or_else(|e| panic!("{e}"));
    let expect: std::collections::BTreeSet<&str> = MIGRATION_POINTS.iter().copied().collect();
    assert_eq!(killed, expect, "every migration crash point must kill its victim once armed");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 1,
        .. ProptestConfig::default()
    })]

    /// The sweep holds for arbitrary seeds (different fault RNG streams
    /// and thread interleavings), not just the fixed one.
    #[test]
    fn migration_sweep_never_violates_invariants(seed in any::<u64>()) {
        let runner = ChaosRunner::new(seed);
        if let Err(e) = runner.sweep_migration() {
            prop_assert!(false, "{}", e);
        }
    }
}
