//! An operation-logged counter server — the §7 future-work primitives in
//! use.
//!
//! The paper ships value logging in the libraries and notes that
//! "the use of operation-logging, type-specific locking, and value logging
//! where appropriate will provide a rich environment" (§4.6) and that "the
//! server library should provide a better set of primitives, including
//! some for operation logging and type-specific locking" (§7). This server
//! exercises exactly those primitives:
//!
//! - updates are **operation-logged**: the log record carries the
//!   operation name and the increment amount — not page images — so a
//!   multi-word counter costs a few bytes of log per update and recovery
//!   *replays* (or reverses) operations, gated by the sector sequence
//!   numbers (§2.1.3, §3.2.1);
//! - synchronization is **type-specific**: increments commute, so two
//!   transactions may hold `add` locks on the same counter concurrently —
//!   strict read/write locking would serialize them (§2.1.3's
//!   "type-specific lock modes … obtain increased concurrency").
//!
//! Because concurrent uncommitted increments are allowed, undo must be a
//! *compensating decrement* (subtract the amount) rather than an old-value
//! restore — restoring an old image would wipe out the other
//! transaction's concurrent increment. That is precisely why operation
//! logging is required for type-specific locking.

use std::sync::Arc;

use tabs_codec::{Decode, Encode, Reader, Writer};
use tabs_core::{AppHandle, Node, ObjectId};
use tabs_kernel::{SendRight, Tid};
use tabs_lock::StdMode;
use tabs_proto::ServerError;
use tabs_server_lib::DataServer;

/// `Read` opcode (takes the exclusive/read lock; sees only committed
/// values since pending increments hold add locks).
pub const OP_READ: u32 = 1;
/// `Add` opcode: blind increment under the commuting add lock.
pub const OP_ADD: u32 = 2;

const CELL: u64 = 8;

/// Lock-mode encoding: counters use the standard lock manager with an
/// *add-lock* convention — `Shared` stands for the commuting `add` mode on
/// the counter's add-lock object, `Exclusive` on the read-lock object for
/// readers. Two distinct lock objects per counter keep the semantics of a
/// real type-specific matrix (add/add compatible, add/read incompatible)
/// expressible over the shared/exclusive lattice:
///
/// | wanted    | lock taken                                    |
/// |-----------|-----------------------------------------------|
/// | add       | Shared on the counter's lock object           |
/// | read      | Exclusive on the counter's lock object        |
///
/// Shared/Shared compatible ⇒ adds commute; Shared/Exclusive conflict ⇒
/// reads exclude pending adds and vice versa. This is the standard
/// embedding of a commuting-update mode into an S/X lock manager.
fn lock_obj(ctx: &tabs_server_lib::OpCtx<'_>, idx: u64, total: u64) -> ObjectId {
    // Lock objects live past the data region so they never alias cells.
    ctx.create_object_id((total + idx) * CELL, CELL as u32)
}

fn cell_obj(ctx: &tabs_server_lib::OpCtx<'_>, idx: u64) -> ObjectId {
    ctx.create_object_id(idx * CELL, CELL as u32)
}

/// The operation-logged counter server.
pub struct CounterServer {
    server: DataServer,
    counters: u64,
}

impl CounterServer {
    /// Spawns a bank of `counters` operation-logged counters on `node`.
    pub fn spawn(node: &Node, name: &str, counters: u64) -> Result<Self, ServerError> {
        let bytes = counters * CELL * 2; // cells + lock-object region
        let pages = bytes.div_ceil(tabs_kernel::PAGE_SIZE as u64).max(1) as u32;
        let seg = node.add_segment(&format!("{name}-segment"), pages);
        let server = DataServer::new(&node.deps(), node.server_config(name, seg))?;

        // Register the operation's redo/undo with the recovery machinery:
        // redo re-applies the increment, undo applies the compensating
        // decrement. Both are blind arithmetic on the mapped segment.
        let seg_map = server.segment().clone();
        let apply = move |object: ObjectId, delta: i64| -> Result<(), String> {
            let cur = seg_map.read_i64(object.offset).map_err(|e| e.to_string())?;
            seg_map.write_i64(object.offset, cur.wrapping_add(delta)).map_err(|e| e.to_string())
        };
        let apply_redo = apply.clone();
        server.register_operation(
            "add",
            move |object, redo| {
                let d = i64::decode_all(redo).map_err(|e| e.to_string())?;
                apply_redo(object, d)
            },
            move |object, undo| {
                let d = i64::decode_all(undo).map_err(|e| e.to_string())?;
                apply(object, -d)
            },
        );

        let total = counters;
        server.accept_requests(Arc::new(move |ctx, opcode, args| {
            let mut r = Reader::new(args);
            let idx = u64::decode(&mut r).map_err(|e| ServerError::BadRequest(e.to_string()))?;
            if idx >= total {
                return Err(ServerError::BadRequest(format!("counter {idx} out of range")));
            }
            match opcode {
                OP_READ => {
                    // Readers exclude pending adds (type-specific matrix:
                    // read incompatible with add).
                    ctx.lock_object(lock_obj(ctx, idx, total), StdMode::Exclusive)?;
                    let v = ctx
                        .segment()
                        .read_i64(idx * CELL)
                        .map_err(|e| ServerError::Storage(e.to_string()))?;
                    let mut w = Writer::new();
                    v.encode(&mut w);
                    Ok(w.into_vec())
                }
                OP_ADD => {
                    let delta =
                        i64::decode(&mut r).map_err(|e| ServerError::BadRequest(e.to_string()))?;
                    // Adds commute: the add lock is the Shared embedding.
                    ctx.lock_object(lock_obj(ctx, idx, total), StdMode::Shared)?;
                    let obj = cell_obj(ctx, idx);
                    // Apply in volatile memory, then spool the operation
                    // record (name + amount), not page images.
                    let cur = ctx
                        .segment()
                        .read_i64(obj.offset)
                        .map_err(|e| ServerError::Storage(e.to_string()))?;
                    ctx.segment()
                        .write_i64(obj.offset, cur.wrapping_add(delta))
                        .map_err(|e| ServerError::Storage(e.to_string()))?;
                    ctx.log_operation(obj, "add", delta.encode_to_vec(), delta.encode_to_vec())?;
                    Ok(Vec::new())
                }
                other => Err(ServerError::BadRequest(format!("opcode {other}"))),
            }
        }));
        node.register_server(&server, name, "op-logged-counter", ObjectId::new(seg, 0, 8));
        Ok(Self { server, counters })
    }

    /// A send right for callers.
    pub fn send_right(&self) -> SendRight {
        self.server.send_right()
    }

    /// Number of counters.
    pub fn counters(&self) -> u64 {
        self.counters
    }
}

/// Client stub for the counter server.
#[derive(Clone)]
pub struct CounterClient {
    app: AppHandle,
    port: SendRight,
}

impl CounterClient {
    /// Creates a stub talking to `port` via `app`.
    pub fn new(app: AppHandle, port: SendRight) -> Self {
        Self { app, port }
    }

    /// Reads the committed value.
    pub fn read(&self, tid: Tid, idx: u64) -> Result<i64, tabs_app_lib::AppError> {
        let mut w = Writer::new();
        idx.encode(&mut w);
        let out = self.app.call(&self.port, tid, OP_READ, w.into_vec())?;
        i64::decode_all(&out).map_err(|e| tabs_app_lib::AppError::Rpc(e.to_string()))
    }

    /// Blind increment.
    pub fn add(&self, tid: Tid, idx: u64, delta: i64) -> Result<(), tabs_app_lib::AppError> {
        let mut w = Writer::new();
        idx.encode(&mut w);
        delta.encode(&mut w);
        self.app.call(&self.port, tid, OP_ADD, w.into_vec())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_core::{Cluster, NodeId};

    fn rig() -> (Arc<Cluster>, tabs_core::Node, CounterClient, AppHandle) {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let srv = CounterServer::spawn(&node, "ctr", 8).unwrap();
        node.recover().unwrap();
        let app = node.app();
        let client = CounterClient::new(app.clone(), srv.send_right());
        (cluster, node, client, app)
    }

    #[test]
    fn add_and_read() {
        let (_c, node, ctr, app) = rig();
        app.run(|t| {
            ctr.add(t, 0, 5)?;
            ctr.add(t, 0, 7)
        })
        .unwrap();
        app.run(|t| {
            assert_eq!(ctr.read(t, 0)?, 12);
            Ok(())
        })
        .unwrap();
        node.shutdown();
    }

    #[test]
    fn concurrent_increments_commute() {
        // Two *uncommitted* transactions increment the same counter — the
        // type-specific add lock admits both. Strict read/write locking
        // would have timed the second one out.
        let (_c, node, ctr, app) = rig();
        let t1 = app.begin_transaction(Tid::NULL).unwrap();
        let t2 = app.begin_transaction(Tid::NULL).unwrap();
        ctr.add(t1, 0, 10).unwrap();
        ctr.add(t2, 0, 20).unwrap(); // would deadlock under S/X locking
        assert!(app.end_transaction(t1).unwrap().is_committed());
        assert!(app.end_transaction(t2).unwrap().is_committed());
        app.run(|t| {
            assert_eq!(ctr.read(t, 0)?, 30);
            Ok(())
        })
        .unwrap();
        node.shutdown();
    }

    #[test]
    fn reader_excluded_while_adds_pending() {
        let (_c, node, ctr, app) = rig();
        let t1 = app.begin_transaction(Tid::NULL).unwrap();
        ctr.add(t1, 0, 10).unwrap();
        // A reader must not observe the uncommitted increment: the
        // type-specific matrix makes read incompatible with add.
        let t2 = app.begin_transaction(Tid::NULL).unwrap();
        assert!(ctr.read(t2, 0).is_err(), "read blocked by pending add");
        app.end_transaction(t2).unwrap();
        assert!(app.end_transaction(t1).unwrap().is_committed());
        node.shutdown();
    }

    #[test]
    fn abort_compensates_without_clobbering_concurrent_adds() {
        // The heart of the operation-logging argument: t1 and t2 both
        // increment; t1 aborts. Value logging would restore t1's
        // pre-image and erase t2's work; compensation subtracts exactly
        // t1's amount.
        let (_c, node, ctr, app) = rig();
        let t1 = app.begin_transaction(Tid::NULL).unwrap();
        let t2 = app.begin_transaction(Tid::NULL).unwrap();
        ctr.add(t1, 0, 100).unwrap();
        ctr.add(t2, 0, 1).unwrap();
        app.abort_transaction(t1).unwrap();
        assert!(app.end_transaction(t2).unwrap().is_committed());
        app.run(|t| {
            assert_eq!(ctr.read(t, 0)?, 1, "t2's increment survived t1's abort");
            Ok(())
        })
        .unwrap();
        node.shutdown();
    }

    #[test]
    fn operation_replay_after_crash() {
        let cluster = Cluster::new();
        let node = cluster.boot_node(NodeId(1));
        let srv = CounterServer::spawn(&node, "ctr", 8).unwrap();
        node.recover().unwrap();
        let app = node.app();
        let ctr = CounterClient::new(app.clone(), srv.send_right());
        app.run(|t| {
            ctr.add(t, 0, 3)?;
            ctr.add(t, 0, 4)
        })
        .unwrap();
        // An uncommitted add rides into the crash.
        let t = app.begin_transaction(Tid::NULL).unwrap();
        ctr.add(t, 0, 1000).unwrap();
        node.rm.force(None).unwrap();
        drop(srv);
        node.crash();

        let node = cluster.boot_node(NodeId(1));
        let srv = CounterServer::spawn(&node, "ctr", 8).unwrap();
        let report = node.recover().unwrap();
        assert!(report.ops_redone > 0 || report.ops_undone == 0);
        let app = node.app();
        let ctr = CounterClient::new(app.clone(), srv.send_right());
        app.run(|t| {
            assert_eq!(ctr.read(t, 0)?, 7, "committed ops replayed, loser gone");
            Ok(())
        })
        .unwrap();
        node.shutdown();
    }

    #[test]
    fn log_volume_is_tiny() {
        // The §2.1.3 claim: operation logging "may require less log
        // space." One add costs a handful of bytes.
        let (_c, node, ctr, app) = rig();
        let before = node.rm.log().usage().0;
        app.run(|t| ctr.add(t, 0, 1)).unwrap();
        let after = node.rm.log().usage().0;
        assert!(after - before < 150, "one op-logged txn cost {} log bytes", after - before);
        node.shutdown();
    }
}
