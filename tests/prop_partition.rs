//! Partition tolerance: the cluster must converge — no wedged in-doubt
//! transaction, no leaked lock, survivor still serving — no matter where
//! in the two-phase-commit exchange a partition lands, and the heartbeat
//! failure detector must never suspect a peer that is merely lossy.
//!
//! Three properties:
//!
//! 1. Cooperative termination resolves a coordinator-crash in-doubt
//!    window in under a quarter of the retransmit-timeout-only baseline
//!    (the acceptance gate, measured by the same scenario `tables
//!    partition` benchmarks).
//! 2. Cutting the wire at *every* commit-datagram boundary of a
//!    distributed transfer, then healing, always converges to a
//!    model-consistent state.
//! 3. A lossy-but-connected `ScheduledPolicy` never drives a false
//!    suspicion: drops and delays are not a partition.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tabs_chaos::{ChaosRunner, NetSchedule};
use tabs_codec::Decode;
use tabs_core::{Cluster, ClusterConfig, HeartbeatConfig, Node, NodeId, Tid};
use tabs_net::{DatagramFate, DatagramPolicy};
use tabs_obs::TraceEvent;
use tabs_proto::Datagram;
use tabs_servers::{IntArrayClient, IntArrayServer};
use tabs_tm::TmTimeouts;

/// Fixed seed, same convention as the chaos sweep: the properties are
/// exhaustive over cut positions, so any seed must pass.
const SEED: u64 = 0xC4A0_05ED;
const BASE: i64 = 100;

fn fast_heartbeat() -> HeartbeatConfig {
    HeartbeatConfig {
        interval: Duration::from_millis(10),
        suspect_after: 3,
        probe_cap: Duration::from_millis(100),
    }
}

fn snappy_timeouts() -> TmTimeouts {
    TmTimeouts {
        retransmit: Duration::from_millis(25),
        vote_deadline: Duration::from_millis(400),
        ack_deadline: Duration::from_millis(200),
    }
}

// ---- 1. The acceptance gate --------------------------------------------

#[test]
fn cooperative_termination_beats_timeout_baseline() {
    let runner = ChaosRunner::new(SEED);
    let baseline = runner.partition_rejoin_scenario(false).unwrap_or_else(|e| panic!("{e}"));
    let coop = runner.partition_rejoin_scenario(true).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        baseline.survivor_commits > 0 && coop.survivor_commits > 0,
        "survivor stopped committing during the outage \
         (baseline {}, cooperative {})",
        baseline.survivor_commits,
        coop.survivor_commits
    );
    assert!(
        coop.resolution * 4 < baseline.resolution,
        "cooperative in-doubt resolution took {:?}, not under 25% of the \
         retransmit-timeout baseline's {:?}",
        coop.resolution,
        baseline.resolution
    );
}

// ---- 2. Partition at every 2PC message boundary ------------------------

/// Delivers everything until the `k`-th commit-protocol datagram, then
/// drops *all* traffic (a full bidirectional partition) until cleared.
struct CutAtBoundary {
    k: u32,
    seen: AtomicU32,
    cutting: AtomicBool,
}

impl CutAtBoundary {
    fn new(k: u32) -> Arc<Self> {
        Arc::new(Self { k, seen: AtomicU32::new(0), cutting: AtomicBool::new(false) })
    }
}

impl DatagramPolicy for CutAtBoundary {
    fn route(&self, _from: NodeId, _to: NodeId, body: &[u8]) -> DatagramFate {
        if self.cutting.load(Ordering::Relaxed) {
            return DatagramFate::Drop;
        }
        if matches!(Datagram::decode_all(body), Ok(Datagram::Commit(_)))
            && self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.k
        {
            self.cutting.store(true, Ordering::Relaxed);
            return DatagramFate::Drop;
        }
        DatagramFate::Deliver
    }
}

fn boot_pair(config: ClusterConfig) -> (Arc<Cluster>, Node, IntArrayServer, Node, IntArrayServer) {
    let cluster = Cluster::with_config(config);
    let n1 = cluster.boot_node(NodeId(1));
    let a1 = IntArrayServer::spawn(&n1, "acct-a", 1).unwrap_or_else(|e| panic!("spawn a: {e}"));
    n1.recover().unwrap_or_else(|e| panic!("recover n1: {e}"));
    let n2 = cluster.boot_node(NodeId(2));
    let a2 = IntArrayServer::spawn(&n2, "acct-b", 1).unwrap_or_else(|e| panic!("spawn b: {e}"));
    n2.recover().unwrap_or_else(|e| panic!("recover n2: {e}"));
    n1.tm.set_timeouts(snappy_timeouts());
    n2.tm.set_timeouts(snappy_timeouts());
    (cluster, n1, a1, n2, a2)
}

#[test]
fn partition_at_every_message_boundary_converges_after_heal() {
    // A clean two-node transfer exchanges four commit datagrams (prepare,
    // vote, decision, ack); sweeping past that covers "no cut at all".
    for k in 1..=5u32 {
        let ctx = format!("seed={SEED} crash_point=commit-msg-boundary-{k}");
        let (cluster, n1, a1, n2, a2) = boot_pair(
            ClusterConfig::default()
                .heartbeat(HeartbeatConfig { suspect_after: 2, ..fast_heartbeat() }),
        );
        let app = n1.app();
        let local = IntArrayClient::new(app.clone(), a1.send_right());
        let found = n1.resolve("acct-b", 1, Duration::from_secs(3));
        assert_eq!(found.len(), 1, "{ctx}: name service never resolved acct-b");
        let remote = IntArrayClient::new(app.clone(), found[0].0.clone());
        app.run(|t| local.set(t, 0, BASE)).unwrap_or_else(|e| panic!("{ctx}: seed A: {e}"));
        let app2 = n2.app();
        let local2 = IntArrayClient::new(app2.clone(), a2.send_right());
        app2.run(|t| local2.set(t, 0, BASE)).unwrap_or_else(|e| panic!("{ctx}: seed B: {e}"));

        let cut = CutAtBoundary::new(k);
        cluster.network().set_datagram_policy(Arc::clone(&cut) as Arc<dyn DatagramPolicy>);

        // The transfer runs against the cut wire on its own thread; the
        // client may be told committed, aborted or nothing at all.
        let xfer = {
            let (app, local, remote) = (app.clone(), local.clone(), remote.clone());
            std::thread::spawn(move || {
                let t = app.begin_transaction(Tid::NULL).ok()?;
                if local.add(t, 0, -10).is_err() || remote.add(t, 0, 10).is_err() {
                    let _ = app.abort_transaction(t);
                    return Some(false);
                }
                app.end_transaction(t).ok().map(|o| o.is_committed())
            })
        };

        // Hold the partition long enough for suspicion to fire on both
        // sides, then heal.
        std::thread::sleep(Duration::from_millis(150));
        cluster.network().clear_datagram_policy();
        let outcome = xfer.join().unwrap_or_else(|_| panic!("{ctx}: transfer panicked"));

        // Convergence: no wedged in-doubt transaction, no leaked lock.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let wedged = !n1.tm.in_doubt_tids().is_empty()
                || !n2.tm.in_doubt_tids().is_empty()
                || a1.server().locks().locked_object_count() != 0
                || a2.server().locks().locked_object_count() != 0;
            if !wedged {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{ctx}: cluster never converged after heal \
                 (in-doubt n1 {:?}, n2 {:?}, locks [{}, {}])",
                n1.tm.in_doubt_tids(),
                n2.tm.in_doubt_tids(),
                a1.server().locks().locked_object_count(),
                a2.server().locks().locked_object_count()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let read = |app: &tabs_app_lib::AppHandle, c: &IntArrayClient| -> i64 {
            app.run(|t| c.get(t, 0)).unwrap_or_else(|e| panic!("{ctx}: post-heal read: {e}"))
        };
        let (a, b) = (read(&app, &local), read(&app2, &local2));
        assert_eq!(a + b, 2 * BASE, "{ctx}: conservation violated: [{a}, {b}]");
        match outcome {
            Some(true) => assert_eq!(
                (a, b),
                (BASE - 10, BASE + 10),
                "{ctx}: reported-committed transfer missing"
            ),
            Some(false) => {
                assert_eq!((a, b), (BASE, BASE), "{ctx}: reported-aborted transfer applied")
            }
            None => assert!(
                (a, b) == (BASE, BASE) || (a, b) == (BASE - 10, BASE + 10),
                "{ctx}: half-applied transfer: [{a}, {b}]"
            ),
        }
        drop((local, remote, local2));
        drop((a1, a2));
        n1.crash();
        n2.crash();
    }
}

// ---- 3. Lossy-but-connected traffic never looks like a partition -------

#[test]
fn lossy_but_connected_schedule_never_suspects() {
    // 30% drop with two datagrams per direction per heartbeat interval:
    // eight consecutive silent intervals (the suspicion threshold) would
    // need ~16 consecutive drops — not a schedule, a partition.
    let schedule = NetSchedule {
        drop_prob: 0.30,
        dup_prob: 0.15,
        delay_prob: 0.20,
        max_delay: Duration::from_millis(3),
    };
    let hb = HeartbeatConfig { suspect_after: 8, ..fast_heartbeat() };
    let (cluster, n1, a1, n2, a2) = boot_pair(ClusterConfig::default().trace(true).heartbeat(hb));
    let app = n1.app();
    let local = IntArrayClient::new(app.clone(), a1.send_right());
    let found = n1.resolve("acct-b", 1, Duration::from_secs(3));
    assert_eq!(found.len(), 1, "name service never resolved acct-b");
    let remote = IntArrayClient::new(app.clone(), found[0].0.clone());
    app.run(|t| local.set(t, 0, BASE)).unwrap_or_else(|e| panic!("seed A: {e}"));
    let app2 = n2.app();
    let local2 = IntArrayClient::new(app2.clone(), a2.send_right());
    app2.run(|t| local2.set(t, 0, BASE)).unwrap_or_else(|e| panic!("seed B: {e}"));

    cluster.network().set_datagram_policy(schedule.policy(SEED));
    // Mixed workload plus idle time under loss: distributed transfers and
    // plain heartbeat silence both have to survive the schedule.
    for _ in 0..3 {
        let _ = app.run(|t| {
            local.add(t, 0, -1)?;
            remote.add(t, 0, 1)
        });
        std::thread::sleep(Duration::from_millis(150));
    }
    cluster.network().clear_datagram_policy();

    for (who, node, peer) in [("n1", &n1, NodeId(2)), ("n2", &n2, NodeId(1))] {
        let view = node.reachability();
        assert!(
            view.iter().any(|&(n, up)| n == peer && up),
            "{who} reports {peer} unreachable under a lossy-but-connected \
             schedule: {view:?}"
        );
        let suspicions: Vec<String> = cluster
            .trace(node.id)
            .snapshot()
            .into_iter()
            .filter(|r| matches!(r.event, TraceEvent::PeerSuspected { .. }))
            .map(|r| format!("{:?}", r.event))
            .collect();
        assert!(suspicions.is_empty(), "{who} raised false suspicions: {suspicions:?}");
    }
    drop((local, remote, local2));
    drop((a1, a2));
    n1.crash();
    n2.crash();
}
