//! Quickstart: boot a TABS node, run transactions against a recoverable
//! object, abort one, crash the node, and watch recovery restore the
//! invariants.
//!
//! ```text
//! cargo run -p tabs-servers --example quickstart
//! ```

use tabs_core::{Cluster, NodeId, Tid};
use tabs_servers::{IntArrayClient, IntArrayServer};

fn main() {
    // A cluster owns everything that survives node crashes (disks, logs).
    let cluster = Cluster::new();

    // Boot node 1: the kernel plus the four TABS system components
    // (Recovery Manager, Transaction Manager, Communication Manager, Name
    // Server — Figure 3-1 of the paper).
    let node = cluster.boot_node(NodeId(1));
    println!("booted {:?} with components:", node.id);
    println!("  recovery manager    {:?}", node.rm);
    println!("  transaction manager {:?}", node.tm);
    println!("  communication mgr   {:?}", node.cm);
    println!("  name server         {:?}", node.ns);

    // Start the paper's simplest data server (§4.1): an integer array.
    let array = IntArrayServer::spawn(&node, "accounts", 100).expect("spawn server");
    node.recover().expect("recovery");
    let app = node.app();
    let client = IntArrayClient::new(app.clone(), array.send_right());

    // A committed transaction.
    let t1 = app.begin_transaction(Tid::NULL).expect("begin");
    client.set(t1, 0, 500).expect("set");
    client.set(t1, 1, 250).expect("set");
    assert!(app.end_transaction(t1).expect("end").is_committed());
    println!("\ncommitted: cell0=500, cell1=250");

    // An aborted transaction: its effects vanish.
    let t2 = app.begin_transaction(Tid::NULL).expect("begin");
    client.set(t2, 0, 9_999_999).expect("set");
    app.abort_transaction(t2).expect("abort");
    let t3 = app.begin_transaction(Tid::NULL).expect("begin");
    let v = client.get(t3, 0).expect("get");
    app.end_transaction(t3).expect("end");
    println!("after abort: cell0={v} (the 9,999,999 write was undone)");
    assert_eq!(v, 500);

    // Crash the node mid-flight: an uncommitted transaction rides into it.
    let t4 = app.begin_transaction(Tid::NULL).expect("begin");
    client.set(t4, 1, 777).expect("set");
    node.rm.force(None).expect("force");
    drop(array);
    println!("\n*** node crash ***");
    node.crash();

    // Reboot: write-ahead-log recovery restores exactly the committed
    // state.
    let node = cluster.boot_node(NodeId(1));
    let array = IntArrayServer::spawn(&node, "accounts", 100).expect("respawn");
    let report = node.recover().expect("recovery");
    println!(
        "recovered: {} records scanned, {} committed txns redone, {} losers undone",
        report.records_scanned,
        report.committed.len(),
        report.aborted.len()
    );
    let app = node.app();
    let client = IntArrayClient::new(app.clone(), array.send_right());
    let t5 = app.begin_transaction(Tid::NULL).expect("begin");
    let c0 = client.get(t5, 0).expect("get");
    let c1 = client.get(t5, 1).expect("get");
    app.end_transaction(t5).expect("end");
    println!("after recovery: cell0={c0}, cell1={c1}");
    assert_eq!((c0, c1), (500, 250), "committed survives, uncommitted rolled back");

    println!("\nquickstart OK");
    node.shutdown();
}
