//! Write-ahead logging: records, the non-volatile log device, and the
//! volatile log buffer with force semantics.
//!
//! §2.1.3: "In recovery techniques based upon logging, stable storage
//! contains an append-only sequence of records. Many of these records
//! contain an undo component … and a redo component … Updates to data
//! objects are made by modifying a representation of the object residing in
//! volatile storage and by spooling one or more records to the log.
//! Logging is called 'write-ahead' because log records must be safely
//! stored (forced) to stable storage before transactions commit, and before
//! the volatile representation of an object is copied to non-volatile
//! storage."
//!
//! Both of the paper's co-existing techniques are represented:
//! [`LogRecord::ValueUpdate`] (old/new images of at most one page of an
//! object) and [`LogRecord::Operation`] (operation name plus enough
//! information to redo or undo it, allowed to cover multi-page objects).
//! All servers share a common log (§2.1.4), managed by the Recovery
//! Manager in `tabs-rm`.

pub mod device;
pub mod manager;
pub mod records;

pub use device::{
    FaultLogDevice, FileLogDevice, LatencyLogDevice, LogDevice, LogFaults, MemLogDevice,
};
pub use manager::{GroupCommitConfig, LogManager, WalError, CRASH_POINTS};
pub use records::{LogEntry, LogRecord, Lsn, TxState};
