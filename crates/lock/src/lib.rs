//! Lock-based synchronization for transactions on abstract objects.
//!
//! §2.1.3: "TABS has chosen to use locking … To obtain synchronized access
//! to an object, a transaction must first obtain a lock on all or part of
//! it. A lock is granted unless another transaction already holds an
//! incompatible lock. … With type-specific locking, implementors can obtain
//! increased concurrency by defining type-specific lock modes and lock
//! protocols … TABS, like many other systems, currently relies on
//! time-outs" for deadlock resolution; distributed/local deadlock
//! *detection* (Obermarck-style waits-for cycles) is the extension the
//! paper cites, implemented here as an alternative [`DeadlockPolicy`].
//!
//! Subtransaction semantics follow §2.1.3: "With respect to
//! synchronization, a subtransaction behaves as a completely separate
//! transaction" — locks are *not* inherited downward, so two
//! subtransactions of one parent can deadlock against each other. When a
//! subtransaction commits, its locks transfer to the parent
//! ([`LockManager::transfer`]); when it aborts, they are released.

use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use tabs_kernel::{ObjectId, Tid};
use tabs_obs::{TraceCollector, TraceEvent};

/// A lock-mode lattice with a compatibility relation.
///
/// Implement this to define type-specific lock modes (§2.1.3). The relation
/// must be symmetric: `a.compatible(b) == b.compatible(a)`.
pub trait LockMode: Copy + Eq + Hash + Debug + Send + Sync + 'static {
    /// Whether two holders in these modes may coexist on one object.
    fn compatible(&self, other: &Self) -> bool;
}

/// The standard shared/exclusive modes used by most TABS data servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StdMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode for StdMode {
    fn compatible(&self, other: &Self) -> bool {
        matches!((self, other), (StdMode::Shared, StdMode::Shared))
    }
}

/// Example type-specific modes for a counter-like abstract type: increments
/// commute with each other, so `Increment` is self-compatible — the
/// concurrency gain type-specific locking buys (§2.1.3, Schwarz & Spector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterMode {
    /// Observes the counter value; excludes increments.
    Read,
    /// Blind increment; compatible with other increments.
    Increment,
}

impl LockMode for CounterMode {
    fn compatible(&self, other: &Self) -> bool {
        matches!((self, other), (CounterMode::Increment, CounterMode::Increment))
    }
}

/// How lock waits that cannot be granted are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// The paper's policy: wait until a caller-supplied time-out expires.
    Timeout,
    /// Waits-for-graph cycle detection: a request that would close a cycle
    /// fails immediately with [`LockError::Deadlock`].
    Detect,
}

/// Errors from lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The wait exceeded the supplied time-out (the holder may be wedged
    /// or the system deadlocked; the paper's resolution is to abort).
    Timeout(ObjectId),
    /// Granting the lock would create a waits-for cycle.
    Deadlock(ObjectId),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Timeout(o) => write!(f, "lock wait timed out on {o}"),
            LockError::Deadlock(o) => write!(f, "deadlock detected acquiring {o}"),
        }
    }
}

impl std::error::Error for LockError {}

struct State<M: LockMode> {
    /// Granted locks per object.
    holders: HashMap<ObjectId, Vec<(Tid, M)>>,
    /// Objects locked per transaction (for release_all / transfer).
    by_tx: HashMap<Tid, HashSet<ObjectId>>,
    /// Waits-for edges, maintained while requests block (Detect policy and
    /// introspection).
    waits_for: HashMap<Tid, HashSet<Tid>>,
    /// Waiters flagged as deadlock victims by an external detector; their
    /// pending `lock` call returns [`LockError::Deadlock`] on wakeup.
    victims: HashSet<Tid>,
}

/// A source of waits-for edges plus a victim-wakeup hook, implemented by
/// every [`LockManager`] regardless of mode lattice. The distributed
/// deadlock detector (`tabs-detect`) aggregates these per node.
pub trait WaitGraphSource: Send + Sync {
    /// Snapshot of blocked→holder edges. Only edges whose holder still
    /// holds at least one lock are reported (stale edges are cleared on
    /// release, but a snapshot taken mid-release must not resurrect them).
    fn wait_graph(&self) -> Vec<(Tid, Tid)>;

    /// Flags `tid` as a deadlock victim if it is currently blocked here;
    /// its pending `lock` call wakes and fails with
    /// [`LockError::Deadlock`]. Returns whether a waiter was flagged.
    fn abort_waiter(&self, tid: Tid) -> bool;
}

/// A lock manager, generic over the mode lattice.
///
/// Each data server embeds one (§2.1.3: "servers implement locking
/// locally"), so lock tables are per-server, not global — exactly the
/// property that lets TABS servers tailor their locking.
pub struct LockManager<M: LockMode = StdMode> {
    state: Mutex<State<M>>,
    cond: Condvar,
    policy: DeadlockPolicy,
    trace: Mutex<Option<Arc<TraceCollector>>>,
}

impl<M: LockMode> Default for LockManager<M> {
    fn default() -> Self {
        Self::new(DeadlockPolicy::Timeout)
    }
}

impl<M: LockMode> std::fmt::Debug for LockManager<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("LockManager")
            .field("objects", &s.holders.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl<M: LockMode> LockManager<M> {
    /// Creates a lock manager with the given deadlock-resolution policy.
    pub fn new(policy: DeadlockPolicy) -> Self {
        Self {
            state: Mutex::new(State {
                holders: HashMap::new(),
                by_tx: HashMap::new(),
                waits_for: HashMap::new(),
                victims: HashSet::new(),
            }),
            cond: Condvar::new(),
            policy,
            trace: Mutex::new(None),
        }
    }

    /// Creates a shared lock manager.
    pub fn shared(policy: DeadlockPolicy) -> Arc<Self> {
        Arc::new(Self::new(policy))
    }

    /// Attaches a trace collector; grants, waits and time-outs are
    /// recorded as lock [`TraceEvent`]s.
    pub fn set_trace(&self, trace: Arc<TraceCollector>) {
        *self.trace.lock() = Some(trace);
    }

    fn emit(&self, tid: Tid, event: TraceEvent) {
        if let Some(t) = self.trace.lock().as_ref() {
            t.record(tid, event);
        }
    }

    fn blockers(state: &State<M>, object: ObjectId, tid: Tid, mode: M) -> Vec<Tid> {
        state
            .holders
            .get(&object)
            .map(|hs| {
                hs.iter()
                    .filter(|(t, m)| *t != tid && !mode.compatible(m))
                    .map(|(t, _)| *t)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn grant(state: &mut State<M>, object: ObjectId, tid: Tid, mode: M) {
        let hs = state.holders.entry(object).or_default();
        if !hs.iter().any(|(t, m)| *t == tid && *m == mode) {
            hs.push((tid, mode));
        }
        state.by_tx.entry(tid).or_default().insert(object);
    }

    /// Would granting `tid` → … → `tid` close a cycle if `tid` waited on
    /// each transaction in `on`?
    fn creates_cycle(state: &State<M>, tid: Tid, on: &[Tid]) -> bool {
        // DFS from each blocker through waits_for, looking for tid.
        let mut stack: Vec<Tid> = on.to_vec();
        let mut seen: HashSet<Tid> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == tid {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = state.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// `LockObject` (Table 3-1): acquires `mode` on `object` for `tid`,
    /// waiting up to `timeout` if an incompatible lock is held.
    pub fn lock(
        &self,
        tid: Tid,
        object: ObjectId,
        mode: M,
        timeout: Duration,
    ) -> Result<(), LockError> {
        let deadline = Instant::now() + timeout;
        let mut waited = false;
        let mut state = self.state.lock();
        loop {
            if state.victims.remove(&tid) {
                // An external detector picked this waiter as a deadlock
                // victim while it was blocked; surface the same error the
                // local cycle check would have produced.
                state.waits_for.remove(&tid);
                return Err(LockError::Deadlock(object));
            }
            let blockers = Self::blockers(&state, object, tid, mode);
            if blockers.is_empty() {
                Self::grant(&mut state, object, tid, mode);
                state.waits_for.remove(&tid);
                drop(state);
                self.emit(tid, TraceEvent::LockAcquire { object, mode: format!("{mode:?}") });
                return Ok(());
            }
            if self.policy == DeadlockPolicy::Detect && Self::creates_cycle(&state, tid, &blockers)
            {
                state.waits_for.remove(&tid);
                return Err(LockError::Deadlock(object));
            }
            state.waits_for.insert(tid, blockers.into_iter().collect());
            if !waited {
                // Emit outside the state mutex: tracing must never extend
                // the lock-table critical section (the grant and timeout
                // paths already drop it first).
                waited = true;
                drop(state);
                self.emit(tid, TraceEvent::LockWait { object, mode: format!("{mode:?}") });
                state = self.state.lock();
                continue;
            }
            let timed_out = self.cond.wait_until(&mut state, deadline).timed_out();
            if timed_out {
                state.waits_for.remove(&tid);
                drop(state);
                self.emit(tid, TraceEvent::LockTimeout { object, mode: format!("{mode:?}") });
                return Err(LockError::Timeout(object));
            }
        }
    }

    /// `ConditionallyLockObject` (Table 3-1): acquires the lock only if it
    /// is immediately available.
    pub fn try_lock(&self, tid: Tid, object: ObjectId, mode: M) -> bool {
        let mut state = self.state.lock();
        if Self::blockers(&state, object, tid, mode).is_empty() {
            Self::grant(&mut state, object, tid, mode);
            true
        } else {
            false
        }
    }

    /// `IsObjectLocked` (Table 3-1): whether *any* transaction holds a lock
    /// on `object`. Added to the server library for the weak queue (§4.2).
    pub fn is_locked(&self, object: ObjectId) -> bool {
        self.state.lock().holders.get(&object).map(|h| !h.is_empty()).unwrap_or(false)
    }

    /// Whether `tid` itself holds a lock on `object` in any mode.
    pub fn holds(&self, tid: Tid, object: ObjectId) -> bool {
        self.state
            .lock()
            .holders
            .get(&object)
            .map(|h| h.iter().any(|(t, _)| *t == tid))
            .unwrap_or(false)
    }

    /// Current holders of `object`.
    pub fn holders(&self, object: ObjectId) -> Vec<(Tid, M)> {
        self.state.lock().holders.get(&object).cloned().unwrap_or_default()
    }

    /// Objects locked by `tid`.
    pub fn locked_by(&self, tid: Tid) -> Vec<ObjectId> {
        let state = self.state.lock();
        let mut v: Vec<_> =
            state.by_tx.get(&tid).map(|s| s.iter().copied().collect()).unwrap_or_default();
        v.sort();
        v
    }

    /// Releases every lock held by `tid` (done automatically by the server
    /// library at commit or abort, §3.1.1) and wakes waiters.
    pub fn release_all(&self, tid: Tid) {
        let mut state = self.state.lock();
        if let Some(objects) = state.by_tx.remove(&tid) {
            for object in objects {
                if let Some(hs) = state.holders.get_mut(&object) {
                    hs.retain(|(t, _)| *t != tid);
                    if hs.is_empty() {
                        state.holders.remove(&object);
                    }
                }
            }
        }
        state.waits_for.remove(&tid);
        // Also clear other waiters' edges *to* tid: it holds nothing any
        // more, so the exported wait graph must not keep pointing at it.
        // (Woken waiters recompute their real blockers anyway.)
        state.waits_for.retain(|_, on| {
            on.remove(&tid);
            !on.is_empty()
        });
        state.victims.remove(&tid);
        self.cond.notify_all();
    }

    /// Moves all of `from`'s locks to `to` (subtransaction commit: the
    /// parent assumes the child's locks).
    pub fn transfer(&self, from: Tid, to: Tid) {
        let mut state = self.state.lock();
        if let Some(objects) = state.by_tx.remove(&from) {
            for object in &objects {
                if let Some(hs) = state.holders.get_mut(object) {
                    for entry in hs.iter_mut() {
                        if entry.0 == from {
                            entry.0 = to;
                        }
                    }
                    // Merge duplicate (to, mode) pairs.
                    let mut seen = HashSet::new();
                    hs.retain(|e| seen.insert(*e));
                }
            }
            state.by_tx.entry(to).or_default().extend(objects);
        }
        state.waits_for.remove(&from);
        // Waiters blocked on the child are now really blocked on the
        // parent; redirect their edges so the wait graph stays truthful.
        for on in state.waits_for.values_mut() {
            if on.remove(&from) {
                on.insert(to);
            }
        }
        self.cond.notify_all();
    }

    /// Number of distinct locked objects (introspection for tests).
    pub fn locked_object_count(&self) -> usize {
        self.state.lock().holders.len()
    }
}

impl<M: LockMode> WaitGraphSource for LockManager<M> {
    fn wait_graph(&self) -> Vec<(Tid, Tid)> {
        let state = self.state.lock();
        let mut edges: Vec<(Tid, Tid)> = state
            .waits_for
            .iter()
            .flat_map(|(waiter, on)| {
                on.iter()
                    .filter(|holder| state.by_tx.contains_key(holder))
                    .map(move |holder| (*waiter, *holder))
            })
            .collect();
        drop(state);
        edges.sort();
        edges
    }

    fn abort_waiter(&self, tid: Tid) -> bool {
        let mut state = self.state.lock();
        // Only flag transactions actually blocked here; otherwise the flag
        // would linger and poison an unrelated later wait.
        if state.waits_for.contains_key(&tid) {
            state.victims.insert(tid);
            self.cond.notify_all();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_kernel::{NodeId, SegmentId};

    fn tid(s: u64) -> Tid {
        Tid { node: NodeId(1), incarnation: 1, seq: s }
    }

    fn obj(o: u64) -> ObjectId {
        ObjectId::new(SegmentId { node: NodeId(1), index: 0 }, o * 8, 8)
    }

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap();
        assert_eq!(lm.holders(obj(1)).len(), 2);
    }

    #[test]
    fn exclusive_blocks_and_times_out() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let err = lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap_err();
        assert_eq!(err, LockError::Timeout(obj(1)));
    }

    #[test]
    fn reacquire_same_mode_is_noop() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        assert_eq!(lm.holders(obj(1)).len(), 1);
    }

    #[test]
    fn upgrade_shared_to_exclusive_when_sole_holder() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        // Another reader is now excluded.
        assert!(!lm.try_lock(tid(2), obj(1), StdMode::Shared));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap();
        assert!(matches!(
            lm.lock(tid(1), obj(1), StdMode::Exclusive, T),
            Err(LockError::Timeout(_))
        ));
    }

    #[test]
    fn conditional_lock() {
        let lm = LockManager::<StdMode>::default();
        assert!(lm.try_lock(tid(1), obj(1), StdMode::Exclusive));
        assert!(!lm.try_lock(tid(2), obj(1), StdMode::Exclusive));
        assert!(lm.try_lock(tid(1), obj(2), StdMode::Shared));
    }

    #[test]
    fn is_locked_and_holds() {
        let lm = LockManager::<StdMode>::default();
        assert!(!lm.is_locked(obj(1)));
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        assert!(lm.is_locked(obj(1)));
        assert!(lm.holds(tid(1), obj(1)));
        assert!(!lm.holds(tid(2), obj(1)));
    }

    #[test]
    fn release_all_wakes_waiters() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(tid(1));
        assert!(waiter.join().unwrap().is_ok());
        assert!(lm.locked_by(tid(1)).is_empty());
        assert!(lm.holds(tid(2), obj(1)));
    }

    #[test]
    fn transfer_moves_locks_to_parent() {
        let lm = LockManager::<StdMode>::default();
        let child = tid(2);
        let parent = tid(1);
        lm.lock(child, obj(1), StdMode::Exclusive, T).unwrap();
        lm.lock(child, obj(2), StdMode::Shared, T).unwrap();
        lm.lock(parent, obj(2), StdMode::Shared, T).unwrap();
        lm.transfer(child, parent);
        assert!(lm.holds(parent, obj(1)));
        assert!(!lm.holds(child, obj(1)));
        assert_eq!(lm.locked_by(parent), vec![obj(1), obj(2)]);
        // No duplicate holder entries after merging.
        assert_eq!(lm.holders(obj(2)).len(), 1);
    }

    #[test]
    fn deadlock_detection_breaks_cycle() {
        let lm = Arc::new(LockManager::<StdMode>::new(DeadlockPolicy::Detect));
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        lm.lock(tid(2), obj(2), StdMode::Exclusive, T).unwrap();
        // tid(2) waits for obj(1) in the background.
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(30));
        // tid(1) → obj(2) closes the cycle and is refused immediately.
        let err = lm.lock(tid(1), obj(2), StdMode::Exclusive, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, LockError::Deadlock(obj(2)));
        // Resolving by aborting tid(1) lets the waiter through.
        lm.release_all(tid(1));
        assert!(waiter.join().unwrap().is_ok());
    }

    #[test]
    fn self_deadlock_between_subtransactions() {
        // §2.1.3: two subtransactions of one parent can deadlock because a
        // subtransaction behaves as a completely separate transaction.
        let lm = LockManager::<StdMode>::default();
        let sub_a = tid(10);
        let sub_b = tid(11);
        lm.lock(sub_a, obj(1), StdMode::Exclusive, T).unwrap();
        assert!(matches!(
            lm.lock(sub_b, obj(1), StdMode::Exclusive, T),
            Err(LockError::Timeout(_))
        ));
    }

    #[test]
    fn counter_mode_increments_commute() {
        let lm = LockManager::<CounterMode>::default();
        lm.lock(tid(1), obj(1), CounterMode::Increment, T).unwrap();
        lm.lock(tid(2), obj(1), CounterMode::Increment, T).unwrap();
        // A reader is excluded while increments are pending.
        assert!(!lm.try_lock(tid(3), obj(1), CounterMode::Read));
        lm.release_all(tid(1));
        lm.release_all(tid(2));
        assert!(lm.try_lock(tid(3), obj(1), CounterMode::Read));
    }

    #[test]
    fn compat_matrices_are_symmetric() {
        for a in [StdMode::Shared, StdMode::Exclusive] {
            for b in [StdMode::Shared, StdMode::Exclusive] {
                assert_eq!(a.compatible(&b), b.compatible(&a));
            }
        }
        for a in [CounterMode::Read, CounterMode::Increment] {
            for b in [CounterMode::Read, CounterMode::Increment] {
                assert_eq!(a.compatible(&b), b.compatible(&a));
            }
        }
    }

    #[test]
    fn wait_graph_exports_blocked_edges() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(lm.wait_graph(), vec![(tid(2), tid(1))]);
        lm.release_all(tid(1));
        waiter.join().unwrap().unwrap();
        assert!(lm.wait_graph().is_empty());
        lm.release_all(tid(2));
    }

    #[test]
    fn aborted_holder_leaves_no_stale_wait_edges() {
        // Satellite: once a holder releases (commit or abort), no exported
        // edge may still point at it — even if its waiters have not yet
        // been rescheduled to recompute their blockers.
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(3), obj(1), StdMode::Shared, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().len() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // tid(1) aborts. The waiter thread has not necessarily woken yet,
        // but the snapshot must already have dropped the tid(2)→tid(1)
        // edge (checked under the same mutex as the release).
        lm.release_all(tid(1));
        for (_, holder) in lm.wait_graph() {
            assert_ne!(holder, tid(1), "stale edge to released holder");
        }
        lm.release_all(tid(3));
        waiter.join().unwrap().unwrap();
        lm.release_all(tid(2));
    }

    #[test]
    fn abort_waiter_wakes_victim_with_deadlock_error() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(30))
        });
        while lm.wait_graph().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let start = Instant::now();
        assert!(lm.abort_waiter(tid(2)));
        assert_eq!(waiter.join().unwrap(), Err(LockError::Deadlock(obj(1))));
        assert!(start.elapsed() < Duration::from_secs(5), "victim should wake promptly");
        // The victim holds nothing and left no residue.
        assert!(lm.wait_graph().is_empty());
        assert!(!lm.holds(tid(2), obj(1)));
    }

    #[test]
    fn abort_waiter_ignores_transactions_not_blocked_here() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        assert!(!lm.abort_waiter(tid(1)), "holder is not a waiter");
        assert!(!lm.abort_waiter(tid(9)), "unknown tid is not a waiter");
        // A later legitimate wait by tid(9) must not be poisoned.
        assert!(matches!(lm.lock(tid(9), obj(1), StdMode::Shared, T), Err(LockError::Timeout(_))));
    }

    #[test]
    fn transfer_redirects_wait_edges_to_parent() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        let child = tid(2);
        let parent = tid(1);
        lm.lock(child, obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(3), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        lm.transfer(child, parent);
        // Snapshot taken before the waiter reschedules already points at
        // the parent, never at the vanished child.
        for (_, holder) in lm.wait_graph() {
            assert_eq!(holder, parent);
        }
        lm.release_all(parent);
        waiter.join().unwrap().unwrap();
        lm.release_all(tid(3));
    }

    #[test]
    fn contention_stress() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        let counter = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let lm = Arc::clone(&lm);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for i in 0..50 {
                        let me = tid(t * 1000 + i);
                        lm.lock(me, obj(1), StdMode::Exclusive, Duration::from_secs(10)).unwrap();
                        {
                            let mut c = counter.lock();
                            *c += 1;
                        }
                        lm.release_all(me);
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 400);
        assert_eq!(lm.locked_object_count(), 0);
    }
}
