//! Criterion timings for the fourteen benchmark transactions of Table 5-4,
//! one Criterion benchmark per table row, against one shared three-node
//! cluster.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use tabs_core::Tid;
use tabs_perf::bench::{benchmarks, BenchWorld};

fn paper_rows(c: &mut Criterion) {
    let world = BenchWorld::new();
    let mut g = c.benchmark_group("table_5_4");
    for bench in benchmarks() {
        let body = bench.body.clone();
        g.bench_function(bench.name, |b| {
            b.iter(|| {
                let tid = world.app.begin_transaction(Tid::NULL).unwrap();
                (body)(&world, tid).unwrap();
                assert!(world.app.end_transaction(tid).unwrap().is_committed());
            })
        });
    }
    g.finish();
    world.shutdown();
}

criterion_group! {
    name = paper;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = paper_rows
}
criterion_main!(paper);
