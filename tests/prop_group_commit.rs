//! Property tests for group-commit durability: under a seeded concurrent
//! workload with the `wal.group.*` crash points armed, every transaction
//! whose group-commit ticket resolved durable must survive reopen, and
//! none that was never forced may half-apply. The scenario's invariant
//! oracle (conservation + committed-present + subset-of-unknowns) is
//! exactly that claim — a committed transfer missing after recovery, or a
//! never-forced one half-landing, fails the sweep.
//!
//! Any failure message starts with `seed=<N> crash_point=<name>`; replay
//! it with `ChaosRunner::new(seed).sweep_group_commit()`.

use proptest::prelude::*;

use tabs_chaos::{ChaosRunner, GROUP_COMMIT_POINTS};

/// Fixed sweep seed (the CI replay anchor): the sweep is exhaustive over
/// the group-commit crash points, the seed only picks fault RNG streams.
const SEED: u64 = 0x6C07_C011;

#[test]
fn group_commit_crash_points_kill_and_recover() {
    let killed = ChaosRunner::new(SEED).sweep_group_commit().unwrap_or_else(|e| panic!("{e}"));
    for &p in GROUP_COMMIT_POINTS {
        assert!(
            killed.contains(p),
            "seed={SEED} crash_point={p} armed on the group-commit workload but never killed \
             the node"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    /// Whatever seed drives the concurrent committers and the kill
    /// timing, tickets that resolved durable survive reopen and no
    /// transfer ever half-applies.
    #[test]
    fn durable_tickets_survive_group_commit_crashes(seed in any::<u64>()) {
        let runner = ChaosRunner::new(seed);
        if let Err(e) = runner.sweep_group_commit() {
            prop_assert!(false, "{}", e);
        }
    }
}
