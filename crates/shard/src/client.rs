//! The shard router: a client stub that caches the shard map, resolves
//! each shard's owner through the Name Server, and chases
//! [`ServerError::WrongShard`] redirects across migrations.
//!
//! The contract with the servers: a `WrongShard` refusal happens
//! *before* the server touches any object, so retrying the same call —
//! within the same transaction — is always safe. The attached map
//! version tells the router what to do: a *newer* version means its map
//! is stale (await the newer map through Name Server gossip and
//! re-route); an *equal* version means the shard is write-fenced
//! mid-migration (back off briefly and retry the same owner — either
//! the fence lifts or the new map arrives).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use tabs_codec::{Decode, Encode, Writer};
use tabs_core::{AppError, AppHandle, CommManager, NameServer, Node};
use tabs_kernel::{NodeId, SendRight, Tid};
use tabs_proto::ServerError;

use crate::map::{shard_name, ShardMap};
use crate::server::{OP_ADD, OP_GET, OP_SET};

/// How long [`ShardClient::new`] waits for the service's first map.
const MAP_WAIT: Duration = Duration::from_secs(3);
/// One Name Server gather round while resolving an owner's port.
const RESOLVE_STEP: Duration = Duration::from_millis(25);
/// Total budget for resolving one owner's port.
const RESOLVE_WAIT: Duration = Duration::from_secs(3);
/// Back-off while a shard is write-fenced at the router's map version.
const FENCE_BACKOFF: Duration = Duration::from_millis(5);
/// One gossip-await round after a `WrongShard` redirect named a newer
/// map version; the outer retry loop supplies the patience.
const MAP_AWAIT_STEP: Duration = Duration::from_millis(100);
/// Default total budget for one routed call. Generous enough to span a
/// full migration (fence + drain + copy + publish).
const CALL_DEADLINE: Duration = Duration::from_secs(5);

struct ClientState {
    map: ShardMap,
    ports: HashMap<u32, SendRight>,
}

/// A routing client for one sharded service.
pub struct ShardClient {
    service: String,
    app: AppHandle,
    ns: Arc<NameServer>,
    cm: Arc<CommManager>,
    state: Mutex<ClientState>,
    call_deadline: Mutex<Duration>,
}

impl ShardClient {
    /// Builds a router on `node` for `service`, fetching the current map
    /// through the Name Server (gossip fills it in on nodes that have
    /// not seen the service yet).
    pub fn new(node: &Node, service: &str) -> Result<Self, AppError> {
        let (_, blob) = node
            .ns
            .await_map_version(service, 1, MAP_WAIT)
            .ok_or_else(|| AppError::Rpc(format!("no shard map published for {service}")))?;
        let map = ShardMap::from_blob(&blob)
            .map_err(|e| AppError::Rpc(format!("bad shard map for {service}: {e}")))?;
        Ok(Self {
            service: service.to_string(),
            app: node.app(),
            ns: Arc::clone(&node.ns),
            cm: Arc::clone(&node.cm),
            state: Mutex::new(ClientState { map, ports: HashMap::new() }),
            call_deadline: Mutex::new(CALL_DEADLINE),
        })
    }

    /// Overrides the total per-call retry budget (chaos tests shrink it
    /// so calls against a dead owner fail fast instead of spanning the
    /// default migration-sized window).
    pub fn set_call_deadline(&self, deadline: Duration) {
        *self.call_deadline.lock() = deadline;
    }

    /// The router's current map (a copy).
    pub fn map(&self) -> ShardMap {
        self.state.lock().map.clone()
    }

    /// The router's current map version.
    pub fn map_version(&self) -> u64 {
        self.state.lock().map.version
    }

    /// The node currently routed to for `key`.
    pub fn owner_of(&self, key: u64) -> NodeId {
        let st = self.state.lock();
        st.map.owner(st.map.shard_of(key))
    }

    /// `Get(key)`.
    pub fn get(&self, tid: Tid, key: u64) -> Result<i64, AppError> {
        let mut w = Writer::new();
        key.encode(&mut w);
        let out = self.call(tid, key, OP_GET, w.into_vec())?;
        i64::decode_all(&out).map_err(|e| AppError::Rpc(e.to_string()))
    }

    /// `Set(key, value)`.
    pub fn set(&self, tid: Tid, key: u64, value: i64) -> Result<(), AppError> {
        let mut w = Writer::new();
        key.encode(&mut w);
        value.encode(&mut w);
        self.call(tid, key, OP_SET, w.into_vec())?;
        Ok(())
    }

    /// Atomically adds `delta` to `key`, returning the new value.
    pub fn add(&self, tid: Tid, key: u64, delta: i64) -> Result<i64, AppError> {
        let mut w = Writer::new();
        key.encode(&mut w);
        delta.encode(&mut w);
        let out = self.call(tid, key, OP_ADD, w.into_vec())?;
        i64::decode_all(&out).map_err(|e| AppError::Rpc(e.to_string()))
    }

    /// Routes one keyed call, chasing redirects until the call budget
    /// runs out.
    fn call(&self, tid: Tid, key: u64, opcode: u32, args: Vec<u8>) -> Result<Vec<u8>, AppError> {
        let deadline = Instant::now() + *self.call_deadline.lock();
        loop {
            let shard = { self.state.lock().map.shard_of(key) };
            let attempt = self
                .port_for(shard, deadline)
                .and_then(|port| self.app.call(&port, tid, opcode, args.clone()));
            let last = match attempt {
                Ok(out) => return Ok(out),
                Err(AppError::Server(ServerError::WrongShard { newer_map_version })) => {
                    self.on_wrong_shard(newer_map_version);
                    format!("wrong shard at map v{newer_map_version}")
                }
                Err(AppError::Server(e)) => {
                    // Unavailable: the cached port may point at a dead
                    // incarnation — drop it, re-resolve, retry.
                    self.state.lock().ports.remove(&shard);
                    std::thread::sleep(FENCE_BACKOFF);
                    e.to_string()
                }
                Err(AppError::Rpc(e)) => {
                    // Resolution failure (owner down or renaming): retry
                    // within the budget, the map may flip under us.
                    std::thread::sleep(FENCE_BACKOFF);
                    e
                }
                Err(e) => return Err(e),
            };
            if Instant::now() >= deadline {
                return Err(AppError::Rpc(format!(
                    "shard route for {} key {key} exhausted its budget (last: {last})",
                    self.service
                )));
            }
        }
    }

    /// Reacts to a `WrongShard` refusal.
    fn on_wrong_shard(&self, server_version: u64) {
        let ours = self.map_version();
        if server_version > ours {
            // Stale map: wait a short round for the newer version to
            // gossip in (the caller's retry loop keeps waiting).
            if let Some((_, blob)) =
                self.ns.await_map_version(&self.service, server_version, MAP_AWAIT_STEP)
            {
                if let Ok(map) = ShardMap::from_blob(&blob) {
                    let mut st = self.state.lock();
                    if map.version > st.map.version {
                        st.ports.clear();
                        st.map = map;
                    }
                }
            }
        } else {
            // Fenced mid-migration (or our map is already newer than the
            // refusing server's): back off; if a newer map is the cure it
            // arrives via gossip, otherwise the fence lifts.
            std::thread::sleep(FENCE_BACKOFF);
            if let Some((version, blob)) = self.ns.map_blob(&self.service) {
                if version > ours {
                    if let Ok(map) = ShardMap::from_blob(&blob) {
                        let mut st = self.state.lock();
                        if map.version > st.map.version {
                            st.ports.clear();
                            st.map = map;
                        }
                    }
                }
            }
        }
    }

    /// A send right to the current owner of `shard`, cached per map
    /// version (the cache is cleared whenever a newer map is adopted).
    /// Resolution never looks past `deadline`.
    fn port_for(&self, shard: u32, deadline: Instant) -> Result<SendRight, AppError> {
        let owner = {
            let st = self.state.lock();
            if let Some(p) = st.ports.get(&shard) {
                return Ok(p.clone());
            }
            st.map.owner(shard)
        };
        let name = shard_name(&self.service, shard);
        let budget =
            deadline.saturating_duration_since(Instant::now()).min(RESOLVE_WAIT).max(RESOLVE_STEP);
        let port = resolve_owner_port(&self.ns, &self.cm, &name, owner, budget)
            .ok_or_else(|| AppError::Rpc(format!("no port for {name} on its owner {owner}")))?;
        self.state.lock().ports.insert(shard, port.clone());
        Ok(port)
    }
}

/// Resolves the port registered for `name` *on node `owner`*, ignoring
/// the same-name registrations every other hosting node makes. Gathers
/// Name Server responses in short rounds until `max_wait` elapses.
pub fn resolve_owner_port(
    ns: &Arc<NameServer>,
    cm: &Arc<CommManager>,
    name: &str,
    owner: NodeId,
    max_wait: Duration,
) -> Option<SendRight> {
    let deadline = Instant::now() + max_wait;
    loop {
        // Over-ask so the lookup keeps gathering past the first (possibly
        // wrong-node) entry for one round; prefer the newest entry (a
        // rebooted owner's fresh registration lands after its stale one).
        for e in ns.lookup(name, usize::MAX, RESOLVE_STEP).into_iter().rev() {
            if e.port.node == owner {
                if let Some(sr) = cm.resolve_port(e.port) {
                    return Some(sr);
                }
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
    }
}
