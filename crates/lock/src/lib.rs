//! Lock-based synchronization for transactions on abstract objects.
//!
//! §2.1.3: "TABS has chosen to use locking … To obtain synchronized access
//! to an object, a transaction must first obtain a lock on all or part of
//! it. A lock is granted unless another transaction already holds an
//! incompatible lock. … With type-specific locking, implementors can obtain
//! increased concurrency by defining type-specific lock modes and lock
//! protocols … TABS, like many other systems, currently relies on
//! time-outs" for deadlock resolution; distributed/local deadlock
//! *detection* (Obermarck-style waits-for cycles) is the extension the
//! paper cites, implemented here as an alternative [`DeadlockPolicy`].
//!
//! Subtransaction semantics follow §2.1.3: "With respect to
//! synchronization, a subtransaction behaves as a completely separate
//! transaction" — locks are *not* inherited downward, so two
//! subtransactions of one parent can deadlock against each other. When a
//! subtransaction commits, its locks transfer to the parent
//! ([`LockManager::transfer`]); when it aborts, they are released.

use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use tabs_kernel::{ObjectId, Tid};
use tabs_obs::{TraceCollector, TraceEvent};

/// A lock-mode lattice with a compatibility relation.
///
/// Implement this to define type-specific lock modes (§2.1.3). The relation
/// must be symmetric: `a.compatible(b) == b.compatible(a)`.
pub trait LockMode: Copy + Eq + Hash + Debug + Send + Sync + 'static {
    /// Whether two holders in these modes may coexist on one object.
    fn compatible(&self, other: &Self) -> bool;
}

/// The standard shared/exclusive modes used by most TABS data servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StdMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode for StdMode {
    fn compatible(&self, other: &Self) -> bool {
        matches!((self, other), (StdMode::Shared, StdMode::Shared))
    }
}

/// Example type-specific modes for a counter-like abstract type: increments
/// commute with each other, so `Increment` is self-compatible — the
/// concurrency gain type-specific locking buys (§2.1.3, Schwarz & Spector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterMode {
    /// Observes the counter value; excludes increments.
    Read,
    /// Blind increment; compatible with other increments.
    Increment,
}

impl LockMode for CounterMode {
    fn compatible(&self, other: &Self) -> bool {
        matches!((self, other), (CounterMode::Increment, CounterMode::Increment))
    }
}

/// How lock waits that cannot be granted are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// The paper's policy: wait until a caller-supplied time-out expires.
    Timeout,
    /// Waits-for-graph cycle detection: a request that would close a cycle
    /// fails immediately with [`LockError::Deadlock`].
    Detect,
}

/// Errors from lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The wait exceeded the supplied time-out (the holder may be wedged
    /// or the system deadlocked; the paper's resolution is to abort).
    Timeout(ObjectId),
    /// Granting the lock would create a waits-for cycle.
    Deadlock(ObjectId),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Timeout(o) => write!(f, "lock wait timed out on {o}"),
            LockError::Deadlock(o) => write!(f, "deadlock detected acquiring {o}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Default number of lock-table stripes. Sixteen keeps the per-stripe
/// tables small and makes release-time wakeups touch ~1/16 of the
/// waiters while costing only sixteen tiny mutexes per server.
pub const DEFAULT_LOCK_STRIPES: usize = 16;

/// One parked waiter in a per-object wait queue (striped tables only).
/// Each waiter parks on its own condition variable so a release can wake
/// exactly the waiters it makes grantable, instead of the whole stripe.
struct Waiter<M: LockMode> {
    tid: Tid,
    mode: M,
    cond: Arc<Condvar>,
}

/// Granted-lock state for one stripe of the table. Grants, conditional
/// locks and releases touch exactly one stripe (hashed from the
/// [`ObjectId`]), so unrelated objects never contend on one mutex and a
/// release wakes only the waiters parked on its own stripe.
struct StripeState<M: LockMode> {
    /// Granted locks per object (objects hashing to this stripe).
    holders: HashMap<ObjectId, Vec<(Tid, M)>>,
    /// Objects locked per transaction *in this stripe* (for release_all /
    /// transfer).
    by_tx: HashMap<Tid, HashSet<ObjectId>>,
    /// FIFO wait queues per object (striped tables): a release wakes the
    /// longest grantable prefix of the released object's queue and nobody
    /// else. Empty in the one-stripe historical table, whose waiters all
    /// park on the stripe-wide condition variable instead.
    queues: HashMap<ObjectId, Vec<Waiter<M>>>,
}

struct Stripe<M: LockMode> {
    state: Mutex<StripeState<M>>,
    /// In the one-stripe historical table, waiters park here and every
    /// release wakes them all. Striped tables park waiters on per-object
    /// condition variables in [`StripeState::queues`] instead.
    cond: Condvar,
}

impl<M: LockMode> Default for Stripe<M> {
    fn default() -> Self {
        Self {
            state: Mutex::new(StripeState {
                holders: HashMap::new(),
                by_tx: HashMap::new(),
                queues: HashMap::new(),
            }),
            cond: Condvar::new(),
        }
    }
}

/// Wait-side state, shared across stripes. Waiting is the cold path (a
/// blocked request parks anyway), so one mutex over the waits-for graph
/// keeps cross-stripe cycle detection and the exported wait graph exact.
///
/// Lock order: a stripe mutex may be held while taking `waits`, never the
/// reverse.
struct WaitState {
    /// Waits-for edges, maintained while requests block (Detect policy and
    /// introspection).
    waits_for: HashMap<Tid, HashSet<Tid>>,
    /// Waiters flagged as deadlock victims by an external detector; their
    /// pending `lock` call returns [`LockError::Deadlock`] on wakeup.
    victims: HashSet<Tid>,
    /// Where each blocked waiter is parked (stripe index and object), so
    /// `abort_waiter` can wake exactly that waiter.
    waiting_in: HashMap<Tid, (usize, ObjectId)>,
}

/// A source of waits-for edges plus a victim-wakeup hook, implemented by
/// every [`LockManager`] regardless of mode lattice. The distributed
/// deadlock detector (`tabs-detect`) aggregates these per node.
pub trait WaitGraphSource: Send + Sync {
    /// Snapshot of blocked→holder edges. Only edges whose holder still
    /// holds at least one lock are reported (stale edges are cleared on
    /// release, but a snapshot taken mid-release must not resurrect them).
    fn wait_graph(&self) -> Vec<(Tid, Tid)>;

    /// Flags `tid` as a deadlock victim if it is currently blocked here;
    /// its pending `lock` call wakes and fails with
    /// [`LockError::Deadlock`]. Returns whether a waiter was flagged.
    fn abort_waiter(&self, tid: Tid) -> bool;
}

/// A lock manager, generic over the mode lattice.
///
/// Each data server embeds one (§2.1.3: "servers implement locking
/// locally"), so lock tables are per-server, not global — exactly the
/// property that lets TABS servers tailor their locking.
///
/// The granted-lock table is split into [`DEFAULT_LOCK_STRIPES`] stripes
/// keyed by the object-id hash: grants, conditional locks and releases
/// lock one stripe, and each stripe keeps a FIFO wait queue per object —
/// a release wakes the longest grantable prefix of the released object's
/// queue and nothing else, so a storm of waiters on one hot object costs
/// one wakeup per release instead of one per waiter. A single-stripe
/// table (`with_stripes(_, 1)`) reproduces the historical design this
/// replaced — one mutex, one condition variable, notify-all on every
/// release, every waiter rechecking — and is kept as the benchmark
/// baseline. The waits-for graph stays global (waiting is the cold
/// path), so cross-stripe deadlock cycles are still detected exactly.
pub struct LockManager<M: LockMode = StdMode> {
    stripes: Box<[Stripe<M>]>,
    waits: Mutex<WaitState>,
    policy: DeadlockPolicy,
    trace: Mutex<Option<Arc<TraceCollector>>>,
    /// Fast-path guard for [`Self::emit`]: tracing is off for production
    /// servers, and the hot acquire path must not take the trace mutex
    /// just to find that out.
    trace_on: AtomicBool,
    stats: WaitCounters,
}

/// Internal wakeup-behaviour counters (plain relaxed atomics; the wait
/// path is already serialized by the stripe mutex, these only count).
#[derive(Default)]
struct WaitCounters {
    waits: AtomicU64,
    wakeups: AtomicU64,
    spurious: AtomicU64,
}

/// A snapshot of the wait path's wakeup behaviour, for benchmarks and
/// tests that quantify the thundering-herd cost of a coarse lock table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WaitStats {
    /// `lock` calls that had to park at least once.
    pub waits: u64,
    /// Condvar wakeups of parked waiters (non-timeout returns).
    pub wakeups: u64,
    /// Wakeups after which the waiter was still blocked and parked again
    /// — the waste a single-stripe table's notify-all storm produces.
    pub spurious: u64,
}

impl std::ops::Sub for WaitStats {
    type Output = WaitStats;

    fn sub(self, rhs: WaitStats) -> WaitStats {
        WaitStats {
            waits: self.waits.saturating_sub(rhs.waits),
            wakeups: self.wakeups.saturating_sub(rhs.wakeups),
            spurious: self.spurious.saturating_sub(rhs.spurious),
        }
    }
}

impl<M: LockMode> Default for LockManager<M> {
    fn default() -> Self {
        Self::new(DeadlockPolicy::Timeout)
    }
}

impl<M: LockMode> std::fmt::Debug for LockManager<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("objects", &self.locked_object_count())
            .field("stripes", &self.stripes.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl<M: LockMode> LockManager<M> {
    /// Creates a lock manager with the given deadlock-resolution policy
    /// and the default stripe count.
    pub fn new(policy: DeadlockPolicy) -> Self {
        Self::with_stripes(policy, DEFAULT_LOCK_STRIPES)
    }

    /// Creates a lock manager with an explicit stripe count. One stripe
    /// reproduces the historical single-mutex table — stripe-wide
    /// condition variable, notify-all wakeups — as the benchmark
    /// baseline; striped tables (the default) add per-object FIFO wait
    /// queues with precise wakeups. Counts are clamped to at least one.
    pub fn with_stripes(policy: DeadlockPolicy, stripes: usize) -> Self {
        let n = stripes.max(1);
        Self {
            stripes: (0..n).map(|_| Stripe::default()).collect(),
            waits: Mutex::new(WaitState {
                waits_for: HashMap::new(),
                victims: HashSet::new(),
                waiting_in: HashMap::new(),
            }),
            policy,
            trace: Mutex::new(None),
            trace_on: AtomicBool::new(false),
            stats: WaitCounters::default(),
        }
    }

    /// Creates a shared lock manager.
    pub fn shared(policy: DeadlockPolicy) -> Arc<Self> {
        Arc::new(Self::new(policy))
    }

    /// Creates a shared lock manager with an explicit stripe count.
    pub fn shared_with_stripes(policy: DeadlockPolicy, stripes: usize) -> Arc<Self> {
        Arc::new(Self::with_stripes(policy, stripes))
    }

    /// Number of stripes the granted-lock table is split into.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe an object's locks live in.
    fn stripe_of(&self, object: ObjectId) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        object.hash(&mut h);
        (h.finish() as usize) % self.stripes.len()
    }

    /// Attaches a trace collector; grants, waits and time-outs are
    /// recorded as lock [`TraceEvent`]s.
    pub fn set_trace(&self, trace: Arc<TraceCollector>) {
        *self.trace.lock() = Some(trace);
        self.trace_on.store(true, Ordering::Release);
    }

    /// Wakeup-behaviour counters since construction (monotonic; callers
    /// diff two snapshots to scope a measurement window).
    pub fn wait_stats(&self) -> WaitStats {
        WaitStats {
            waits: self.stats.waits.load(Ordering::Relaxed),
            wakeups: self.stats.wakeups.load(Ordering::Relaxed),
            spurious: self.stats.spurious.load(Ordering::Relaxed),
        }
    }

    fn emit(&self, tid: Tid, event: TraceEvent) {
        if !self.trace_on.load(Ordering::Acquire) {
            return;
        }
        if let Some(t) = self.trace.lock().as_ref() {
            t.record(tid, event);
        }
    }

    fn blockers(state: &StripeState<M>, object: ObjectId, tid: Tid, mode: M) -> Vec<Tid> {
        state
            .holders
            .get(&object)
            .map(|hs| {
                hs.iter()
                    .filter(|(t, m)| *t != tid && !mode.compatible(m))
                    .map(|(t, _)| *t)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn grant(state: &mut StripeState<M>, object: ObjectId, tid: Tid, mode: M) {
        let hs = state.holders.entry(object).or_default();
        if !hs.iter().any(|(t, m)| *t == tid && *m == mode) {
            hs.push((tid, mode));
        }
        state.by_tx.entry(tid).or_default().insert(object);
    }

    /// Would granting `tid` → … → `tid` close a cycle if `tid` waited on
    /// each transaction in `on`? The waits-for graph is global, so cycles
    /// spanning any mix of stripes are found.
    fn creates_cycle(waits: &WaitState, tid: Tid, on: &[Tid]) -> bool {
        // DFS from each blocker through waits_for, looking for tid.
        let mut stack: Vec<Tid> = on.to_vec();
        let mut seen: HashSet<Tid> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == tid {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = waits.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Clears `tid`'s wait-side registration (edges and parked-stripe
    /// entry).
    fn clear_wait(waits: &mut WaitState, tid: Tid) {
        waits.waits_for.remove(&tid);
        waits.waiting_in.remove(&tid);
    }

    /// Whether this table uses per-object wait queues (striped tables) or
    /// the historical stripe-wide notify-all (one stripe).
    fn precise(&self) -> bool {
        self.stripes.len() > 1
    }

    /// Removes `tid` from `object`'s wait queue (striped tables).
    fn dequeue(state: &mut StripeState<M>, object: ObjectId, tid: Tid) {
        if let Some(q) = state.queues.get_mut(&object) {
            if let Some(pos) = q.iter().position(|w| w.tid == tid) {
                q.remove(pos);
            }
            if q.is_empty() {
                state.queues.remove(&object);
            }
        }
    }

    /// Wakes the longest grantable prefix of `object`'s wait queue: every
    /// waiter compatible with the current holders and with the waiters
    /// woken before it. Stopping at the first blocked waiter keeps grants
    /// FIFO-fair (later compatible readers do not overtake a blocked
    /// writer forever). Called whenever `object`'s holders shrink or a
    /// waiter leaves its queue — a woken waiter that exits by timeout or
    /// victim abort passes the baton here, so a free lock is never left
    /// with its waiters all asleep.
    fn wake_object(state: &StripeState<M>, object: ObjectId) {
        let Some(queue) = state.queues.get(&object) else { return };
        let no_holders = Vec::new();
        let holders = state.holders.get(&object).unwrap_or(&no_holders);
        let mut woken: Vec<(Tid, M)> = Vec::new();
        for w in queue {
            let blocked = holders
                .iter()
                .chain(woken.iter())
                .any(|(t, m)| *t != w.tid && !w.mode.compatible(m));
            if blocked {
                break;
            }
            woken.push((w.tid, w.mode));
            w.cond.notify_one();
        }
    }

    /// `LockObject` (Table 3-1): acquires `mode` on `object` for `tid`,
    /// waiting up to `timeout` if an incompatible lock is held.
    pub fn lock(
        &self,
        tid: Tid,
        object: ObjectId,
        mode: M,
        timeout: Duration,
    ) -> Result<(), LockError> {
        let deadline = Instant::now() + timeout;
        let idx = self.stripe_of(object);
        let stripe = &self.stripes[idx];
        let mut waited = false;
        let mut parks: u64 = 0;
        // The per-object queue entry's condition variable, once parked
        // (striped tables only; the one-stripe table parks stripe-wide).
        let mut queued: Option<Arc<Condvar>> = None;
        let mut state = stripe.state.lock();
        loop {
            if waited {
                // An external detector may have picked this waiter as a
                // deadlock victim while it was blocked; surface the same
                // error the local cycle check would have produced. (A
                // fresh request can't be a victim: flags are only set on
                // registered waiters, and registering happens below.)
                let mut waits = self.waits.lock();
                if waits.victims.remove(&tid) {
                    Self::clear_wait(&mut waits, tid);
                    drop(waits);
                    if queued.is_some() {
                        Self::dequeue(&mut state, object, tid);
                        Self::wake_object(&state, object);
                    }
                    return Err(LockError::Deadlock(object));
                }
            }
            let blockers = Self::blockers(&state, object, tid, mode);
            if blockers.is_empty() {
                Self::grant(&mut state, object, tid, mode);
                if waited {
                    Self::clear_wait(&mut self.waits.lock(), tid);
                }
                if queued.is_some() {
                    Self::dequeue(&mut state, object, tid);
                }
                drop(state);
                self.emit(tid, TraceEvent::LockAcquire { object, mode: format!("{mode:?}") });
                return Ok(());
            }
            {
                let mut waits = self.waits.lock();
                if self.policy == DeadlockPolicy::Detect
                    && Self::creates_cycle(&waits, tid, &blockers)
                {
                    Self::clear_wait(&mut waits, tid);
                    drop(waits);
                    if queued.is_some() {
                        Self::dequeue(&mut state, object, tid);
                        Self::wake_object(&state, object);
                    }
                    return Err(LockError::Deadlock(object));
                }
                waits.waits_for.insert(tid, blockers.into_iter().collect());
                waits.waiting_in.insert(tid, (idx, object));
            }
            if self.precise() && queued.is_none() {
                let cond = Arc::new(Condvar::new());
                state.queues.entry(object).or_default().push(Waiter {
                    tid,
                    mode,
                    cond: Arc::clone(&cond),
                });
                queued = Some(cond);
            }
            if !waited {
                // Emit outside the stripe mutex: tracing must never extend
                // the lock-table critical section (the grant and timeout
                // paths already drop it first).
                waited = true;
                self.stats.waits.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.emit(tid, TraceEvent::LockWait { object, mode: format!("{mode:?}") });
                state = stripe.state.lock();
                continue;
            }
            parks += 1;
            if parks > 1 {
                // The previous wakeup found the object still blocked: a
                // spurious wakeup (on the one-stripe table, every release
                // produces a storm of these).
                self.stats.spurious.fetch_add(1, Ordering::Relaxed);
            }
            let timed_out = match &queued {
                Some(cond) => cond.wait_until(&mut state, deadline).timed_out(),
                None => stripe.cond.wait_until(&mut state, deadline).timed_out(),
            };
            if !timed_out {
                self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            }
            if timed_out {
                Self::clear_wait(&mut self.waits.lock(), tid);
                if queued.is_some() {
                    // Leave the queue and pass the baton: a release may
                    // have woken only this waiter moments ago, and its
                    // successors must not sleep on a now-free lock.
                    Self::dequeue(&mut state, object, tid);
                    Self::wake_object(&state, object);
                }
                drop(state);
                self.emit(tid, TraceEvent::LockTimeout { object, mode: format!("{mode:?}") });
                return Err(LockError::Timeout(object));
            }
        }
    }

    /// `ConditionallyLockObject` (Table 3-1): acquires the lock only if it
    /// is immediately available. Touches one stripe, never the wait state.
    pub fn try_lock(&self, tid: Tid, object: ObjectId, mode: M) -> bool {
        let mut state = self.stripes[self.stripe_of(object)].state.lock();
        if Self::blockers(&state, object, tid, mode).is_empty() {
            Self::grant(&mut state, object, tid, mode);
            true
        } else {
            false
        }
    }

    /// `IsObjectLocked` (Table 3-1): whether *any* transaction holds a lock
    /// on `object`. Added to the server library for the weak queue (§4.2).
    pub fn is_locked(&self, object: ObjectId) -> bool {
        let state = self.stripes[self.stripe_of(object)].state.lock();
        state.holders.get(&object).map(|h| !h.is_empty()).unwrap_or(false)
    }

    /// Whether `tid` itself holds a lock on `object` in any mode.
    pub fn holds(&self, tid: Tid, object: ObjectId) -> bool {
        let state = self.stripes[self.stripe_of(object)].state.lock();
        state.holders.get(&object).map(|h| h.iter().any(|(t, _)| *t == tid)).unwrap_or(false)
    }

    /// Current holders of `object`.
    pub fn holders(&self, object: ObjectId) -> Vec<(Tid, M)> {
        let state = self.stripes[self.stripe_of(object)].state.lock();
        state.holders.get(&object).cloned().unwrap_or_default()
    }

    /// Objects locked by `tid`.
    pub fn locked_by(&self, tid: Tid) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = Vec::new();
        for stripe in self.stripes.iter() {
            let state = stripe.state.lock();
            if let Some(s) = state.by_tx.get(&tid) {
                v.extend(s.iter().copied());
            }
        }
        v.sort();
        v
    }

    /// Every `(object, mode)` grant `tid` currently holds, across all
    /// stripes (one entry per granted mode when a transaction holds an
    /// object in several modes).
    pub fn modes_held_by(&self, tid: Tid) -> Vec<(ObjectId, M)> {
        let mut v: Vec<(ObjectId, M)> = Vec::new();
        for stripe in self.stripes.iter() {
            let state = stripe.state.lock();
            if let Some(objects) = state.by_tx.get(&tid) {
                for object in objects {
                    if let Some(hs) = state.holders.get(object) {
                        v.extend(hs.iter().filter(|(t, _)| *t == tid).map(|(_, m)| (*object, *m)));
                    }
                }
            }
        }
        v.sort_by_key(|(o, _)| *o);
        v
    }

    /// Whether `tid` holds at least one lock in any stripe.
    fn holds_any(&self, tid: Tid) -> bool {
        self.stripes.iter().any(|s| s.state.lock().by_tx.contains_key(&tid))
    }

    /// Releases every lock held by `tid` (done automatically by the server
    /// library at commit or abort, §3.1.1) and wakes waiters — the
    /// grantable prefix of each released object's queue on striped
    /// tables, the whole stripe on the one-stripe baseline.
    pub fn release_all(&self, tid: Tid) {
        // Clear the granted state stripe by stripe BEFORE touching the
        // wait graph: a `wait_graph` snapshot between the two phases
        // filters edges through the (already emptied) holder tables, so
        // no exported edge can still point at this transaction once its
        // edges are gone.
        let precise = self.precise();
        let mut touched = Vec::new();
        for (idx, stripe) in self.stripes.iter().enumerate() {
            let mut state = stripe.state.lock();
            if let Some(objects) = state.by_tx.remove(&tid) {
                for object in objects {
                    if let Some(hs) = state.holders.get_mut(&object) {
                        hs.retain(|(t, _)| *t != tid);
                        if hs.is_empty() {
                            state.holders.remove(&object);
                        }
                    }
                    if precise {
                        Self::wake_object(&state, object);
                    }
                }
                touched.push(idx);
            }
        }
        {
            let mut waits = self.waits.lock();
            Self::clear_wait(&mut waits, tid);
            // Also clear other waiters' edges *to* tid: it holds nothing
            // any more, so the exported wait graph must not keep pointing
            // at it. (Woken waiters recompute their real blockers anyway.)
            waits.waits_for.retain(|_, on| {
                on.remove(&tid);
                !on.is_empty()
            });
            waits.victims.remove(&tid);
        }
        if !precise {
            // Historical baseline: wake every waiter on every touched
            // stripe and let them recheck.
            for idx in touched {
                self.stripes[idx].cond.notify_all();
            }
        }
    }

    /// Moves all of `from`'s locks to `to` (subtransaction commit: the
    /// parent assumes the child's locks).
    pub fn transfer(&self, from: Tid, to: Tid) {
        let precise = self.precise();
        let mut touched = Vec::new();
        for (idx, stripe) in self.stripes.iter().enumerate() {
            let mut state = stripe.state.lock();
            if let Some(objects) = state.by_tx.remove(&from) {
                for object in &objects {
                    if let Some(hs) = state.holders.get_mut(object) {
                        for entry in hs.iter_mut() {
                            if entry.0 == from {
                                entry.0 = to;
                            }
                        }
                        // Merge duplicate (to, mode) pairs.
                        let mut seen = HashSet::new();
                        hs.retain(|e| seen.insert(*e));
                    }
                    if precise {
                        // The rename may unblock a waiter the new holder
                        // no longer conflicts with (self-compatibility).
                        Self::wake_object(&state, *object);
                    }
                }
                state.by_tx.entry(to).or_default().extend(objects);
                touched.push(idx);
            }
        }
        {
            let mut waits = self.waits.lock();
            Self::clear_wait(&mut waits, from);
            // Waiters blocked on the child are now really blocked on the
            // parent; redirect their edges so the wait graph stays
            // truthful.
            for on in waits.waits_for.values_mut() {
                if on.remove(&from) {
                    on.insert(to);
                }
            }
        }
        // The parent may itself be a waiter that the renamed holders no
        // longer block (self-compatibility); on the one-stripe baseline,
        // wake the touched stripes so it recomputes.
        if !precise {
            for idx in touched {
                self.stripes[idx].cond.notify_all();
            }
        }
    }

    /// Number of distinct locked objects (introspection for tests).
    pub fn locked_object_count(&self) -> usize {
        self.stripes.iter().map(|s| s.state.lock().holders.len()).sum()
    }
}

impl LockManager<StdMode> {
    /// Read-only classification for the commit fast paths: whether every
    /// lock `tid` holds here is [`StdMode::Shared`]. A participant that
    /// satisfies this (and logged no updates) may vote read-only, release
    /// its locks at phase 1 and drop out of phase 2 — it has no durable
    /// or exclusive state for the decision to protect. Vacuously true
    /// when `tid` holds no locks.
    pub fn holds_only_shared(&self, tid: Tid) -> bool {
        self.modes_held_by(tid).iter().all(|(_, m)| *m == StdMode::Shared)
    }
}

impl<M: LockMode> WaitGraphSource for LockManager<M> {
    fn wait_graph(&self) -> Vec<(Tid, Tid)> {
        // Snapshot the edges under the wait mutex, then filter holders
        // against the stripes WITHOUT holding it (lock order is stripe →
        // waits, so stripes must not be taken under waits). `release_all`
        // empties a transaction's stripe entries before clearing its
        // edges, so any edge still present here whose holder has fully
        // released filters out — a snapshot taken mid-release never
        // resurrects a stale edge.
        let edges: Vec<(Tid, Tid)> = {
            let waits = self.waits.lock();
            waits
                .waits_for
                .iter()
                .flat_map(|(waiter, on)| on.iter().map(move |holder| (*waiter, *holder)))
                .collect()
        };
        let mut holds: HashMap<Tid, bool> = HashMap::new();
        let mut out: Vec<(Tid, Tid)> = edges
            .into_iter()
            .filter(|(_, holder)| *holds.entry(*holder).or_insert_with(|| self.holds_any(*holder)))
            .collect();
        out.sort();
        out
    }

    fn abort_waiter(&self, tid: Tid) -> bool {
        // Flag under the wait mutex, then wake exactly the stripe the
        // victim is parked in. Locking that stripe's mutex before
        // notifying closes the race with a waiter that has registered but
        // not yet parked: registration happens with the stripe mutex
        // held, so acquiring it here means the victim is either already
        // parked (and gets the notify) or will re-check the flag at its
        // loop top before parking.
        let parked = {
            let mut waits = self.waits.lock();
            // Only flag transactions actually blocked here; otherwise the
            // flag would linger and poison an unrelated later wait.
            if !waits.waits_for.contains_key(&tid) {
                return false;
            }
            waits.victims.insert(tid);
            waits.waiting_in.get(&tid).copied()
        };
        if let Some((idx, object)) = parked {
            let state = self.stripes[idx].state.lock();
            if let Some(w) = state.queues.get(&object).and_then(|q| q.iter().find(|w| w.tid == tid))
            {
                // Striped table: wake exactly the victim's own condvar.
                w.cond.notify_one();
            } else {
                drop(state);
                self.stripes[idx].cond.notify_all();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_kernel::{NodeId, SegmentId};

    fn tid(s: u64) -> Tid {
        Tid { node: NodeId(1), incarnation: 1, seq: s }
    }

    fn obj(o: u64) -> ObjectId {
        ObjectId::new(SegmentId { node: NodeId(1), index: 0 }, o * 8, 8)
    }

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap();
        assert_eq!(lm.holders(obj(1)).len(), 2);
    }

    #[test]
    fn exclusive_blocks_and_times_out() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let err = lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap_err();
        assert_eq!(err, LockError::Timeout(obj(1)));
    }

    #[test]
    fn reacquire_same_mode_is_noop() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        assert_eq!(lm.holders(obj(1)).len(), 1);
    }

    #[test]
    fn upgrade_shared_to_exclusive_when_sole_holder() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        // Another reader is now excluded.
        assert!(!lm.try_lock(tid(2), obj(1), StdMode::Shared));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap();
        assert!(matches!(
            lm.lock(tid(1), obj(1), StdMode::Exclusive, T),
            Err(LockError::Timeout(_))
        ));
    }

    #[test]
    fn conditional_lock() {
        let lm = LockManager::<StdMode>::default();
        assert!(lm.try_lock(tid(1), obj(1), StdMode::Exclusive));
        assert!(!lm.try_lock(tid(2), obj(1), StdMode::Exclusive));
        assert!(lm.try_lock(tid(1), obj(2), StdMode::Shared));
    }

    #[test]
    fn is_locked_and_holds() {
        let lm = LockManager::<StdMode>::default();
        assert!(!lm.is_locked(obj(1)));
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        assert!(lm.is_locked(obj(1)));
        assert!(lm.holds(tid(1), obj(1)));
        assert!(!lm.holds(tid(2), obj(1)));
    }

    #[test]
    fn shared_only_classification() {
        let lm = LockManager::<StdMode>::default();
        // No locks at all: vacuously read-only.
        assert!(lm.holds_only_shared(tid(1)));
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(1), obj(2), StdMode::Shared, T).unwrap();
        assert!(lm.holds_only_shared(tid(1)));
        assert_eq!(
            lm.modes_held_by(tid(1)),
            vec![(obj(1), StdMode::Shared), (obj(2), StdMode::Shared)]
        );
        // One exclusive grant disqualifies the transaction, another
        // transaction's X-lock does not.
        lm.lock(tid(2), obj(3), StdMode::Exclusive, T).unwrap();
        assert!(lm.holds_only_shared(tid(1)));
        lm.lock(tid(1), obj(4), StdMode::Exclusive, T).unwrap();
        assert!(!lm.holds_only_shared(tid(1)));
        lm.release_all(tid(1));
        assert!(lm.holds_only_shared(tid(1)));
    }

    #[test]
    fn release_all_wakes_waiters() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(tid(1));
        assert!(waiter.join().unwrap().is_ok());
        assert!(lm.locked_by(tid(1)).is_empty());
        assert!(lm.holds(tid(2), obj(1)));
    }

    #[test]
    fn transfer_moves_locks_to_parent() {
        let lm = LockManager::<StdMode>::default();
        let child = tid(2);
        let parent = tid(1);
        lm.lock(child, obj(1), StdMode::Exclusive, T).unwrap();
        lm.lock(child, obj(2), StdMode::Shared, T).unwrap();
        lm.lock(parent, obj(2), StdMode::Shared, T).unwrap();
        lm.transfer(child, parent);
        assert!(lm.holds(parent, obj(1)));
        assert!(!lm.holds(child, obj(1)));
        assert_eq!(lm.locked_by(parent), vec![obj(1), obj(2)]);
        // No duplicate holder entries after merging.
        assert_eq!(lm.holders(obj(2)).len(), 1);
    }

    #[test]
    fn deadlock_detection_breaks_cycle() {
        let lm = Arc::new(LockManager::<StdMode>::new(DeadlockPolicy::Detect));
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        lm.lock(tid(2), obj(2), StdMode::Exclusive, T).unwrap();
        // tid(2) waits for obj(1) in the background.
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(30));
        // tid(1) → obj(2) closes the cycle and is refused immediately.
        let err = lm.lock(tid(1), obj(2), StdMode::Exclusive, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, LockError::Deadlock(obj(2)));
        // Resolving by aborting tid(1) lets the waiter through.
        lm.release_all(tid(1));
        assert!(waiter.join().unwrap().is_ok());
    }

    #[test]
    fn self_deadlock_between_subtransactions() {
        // §2.1.3: two subtransactions of one parent can deadlock because a
        // subtransaction behaves as a completely separate transaction.
        let lm = LockManager::<StdMode>::default();
        let sub_a = tid(10);
        let sub_b = tid(11);
        lm.lock(sub_a, obj(1), StdMode::Exclusive, T).unwrap();
        assert!(matches!(
            lm.lock(sub_b, obj(1), StdMode::Exclusive, T),
            Err(LockError::Timeout(_))
        ));
    }

    #[test]
    fn counter_mode_increments_commute() {
        let lm = LockManager::<CounterMode>::default();
        lm.lock(tid(1), obj(1), CounterMode::Increment, T).unwrap();
        lm.lock(tid(2), obj(1), CounterMode::Increment, T).unwrap();
        // A reader is excluded while increments are pending.
        assert!(!lm.try_lock(tid(3), obj(1), CounterMode::Read));
        lm.release_all(tid(1));
        lm.release_all(tid(2));
        assert!(lm.try_lock(tid(3), obj(1), CounterMode::Read));
    }

    #[test]
    fn compat_matrices_are_symmetric() {
        for a in [StdMode::Shared, StdMode::Exclusive] {
            for b in [StdMode::Shared, StdMode::Exclusive] {
                assert_eq!(a.compatible(&b), b.compatible(&a));
            }
        }
        for a in [CounterMode::Read, CounterMode::Increment] {
            for b in [CounterMode::Read, CounterMode::Increment] {
                assert_eq!(a.compatible(&b), b.compatible(&a));
            }
        }
    }

    #[test]
    fn wait_graph_exports_blocked_edges() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(lm.wait_graph(), vec![(tid(2), tid(1))]);
        lm.release_all(tid(1));
        waiter.join().unwrap().unwrap();
        assert!(lm.wait_graph().is_empty());
        lm.release_all(tid(2));
    }

    #[test]
    fn aborted_holder_leaves_no_stale_wait_edges() {
        // Satellite: once a holder releases (commit or abort), no exported
        // edge may still point at it — even if its waiters have not yet
        // been rescheduled to recompute their blockers.
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(3), obj(1), StdMode::Shared, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().len() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // tid(1) aborts. The waiter thread has not necessarily woken yet,
        // but the snapshot must already have dropped the tid(2)→tid(1)
        // edge (checked under the same mutex as the release).
        lm.release_all(tid(1));
        for (_, holder) in lm.wait_graph() {
            assert_ne!(holder, tid(1), "stale edge to released holder");
        }
        lm.release_all(tid(3));
        waiter.join().unwrap().unwrap();
        lm.release_all(tid(2));
    }

    #[test]
    fn abort_waiter_wakes_victim_with_deadlock_error() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_secs(30))
        });
        while lm.wait_graph().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let start = Instant::now();
        assert!(lm.abort_waiter(tid(2)));
        assert_eq!(waiter.join().unwrap(), Err(LockError::Deadlock(obj(1))));
        assert!(start.elapsed() < Duration::from_secs(5), "victim should wake promptly");
        // The victim holds nothing and left no residue.
        assert!(lm.wait_graph().is_empty());
        assert!(!lm.holds(tid(2), obj(1)));
    }

    #[test]
    fn abort_waiter_ignores_transactions_not_blocked_here() {
        let lm = LockManager::<StdMode>::default();
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        assert!(!lm.abort_waiter(tid(1)), "holder is not a waiter");
        assert!(!lm.abort_waiter(tid(9)), "unknown tid is not a waiter");
        // A later legitimate wait by tid(9) must not be poisoned.
        assert!(matches!(lm.lock(tid(9), obj(1), StdMode::Shared, T), Err(LockError::Timeout(_))));
    }

    #[test]
    fn transfer_redirects_wait_edges_to_parent() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        let child = tid(2);
        let parent = tid(1);
        lm.lock(child, obj(1), StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(3), obj(1), StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        lm.transfer(child, parent);
        // Snapshot taken before the waiter reschedules already points at
        // the parent, never at the vanished child.
        for (_, holder) in lm.wait_graph() {
            assert_eq!(holder, parent);
        }
        lm.release_all(parent);
        waiter.join().unwrap().unwrap();
        lm.release_all(tid(3));
    }

    #[test]
    fn contention_stress() {
        let lm = Arc::new(LockManager::<StdMode>::default());
        let counter = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let lm = Arc::clone(&lm);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for i in 0..50 {
                        let me = tid(t * 1000 + i);
                        lm.lock(me, obj(1), StdMode::Exclusive, Duration::from_secs(10)).unwrap();
                        {
                            let mut c = counter.lock();
                            *c += 1;
                        }
                        lm.release_all(me);
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 400);
        assert_eq!(lm.locked_object_count(), 0);
    }

    /// Finds two objects that hash to different stripes (the whole point
    /// of the cross-stripe tests below).
    fn cross_stripe_pair(lm: &LockManager<StdMode>) -> (ObjectId, ObjectId) {
        let a = obj(1);
        for o in 2..200 {
            let b = obj(o);
            if lm.stripe_of(b) != lm.stripe_of(a) {
                return (a, b);
            }
        }
        panic!("no cross-stripe pair among 200 objects");
    }

    #[test]
    fn single_stripe_preserves_conflict_semantics() {
        let lm = LockManager::<StdMode>::with_stripes(DeadlockPolicy::Timeout, 1);
        assert_eq!(lm.stripe_count(), 1);
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        assert_eq!(
            lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap_err(),
            LockError::Timeout(obj(1))
        );
        lm.release_all(tid(1));
        lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap();
    }

    #[test]
    fn stripe_count_clamps_to_one() {
        let lm = LockManager::<StdMode>::with_stripes(DeadlockPolicy::Timeout, 0);
        assert_eq!(lm.stripe_count(), 1);
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        assert!(lm.holds(tid(1), obj(1)));
    }

    #[test]
    fn concurrent_acquire_release_across_stripes() {
        // Many threads each exercise lock/release over objects spread
        // across every stripe; conflict semantics must hold throughout
        // (the exclusive section below would corrupt `hits` otherwise).
        let lm = LockManager::<StdMode>::shared(DeadlockPolicy::Timeout);
        let hits = Arc::new(Mutex::new(vec![0i64; 8]));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let lm = Arc::clone(&lm);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        let id = tid(t * 1000 + round + 1);
                        let o = obj((t + round) % 8);
                        lm.lock(id, o, StdMode::Exclusive, Duration::from_secs(5)).unwrap();
                        {
                            let mut h = hits.lock();
                            let idx = ((t + round) % 8) as usize;
                            let v = h[idx];
                            std::thread::yield_now();
                            h[idx] = v + 1;
                        }
                        lm.release_all(id);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(hits.lock().iter().sum::<i64>(), 400);
        assert_eq!(lm.locked_object_count(), 0);
        assert!(lm.wait_graph().is_empty());
    }

    #[test]
    fn local_detect_refuses_cross_stripe_cycle() {
        // T1 holds A (stripe i), T2 holds B (stripe j != i). T2 blocks on
        // A; T1 then requesting B would close a cycle spanning both
        // stripes — the Detect policy must refuse it even though each
        // stripe alone sees only one edge.
        let lm = LockManager::<StdMode>::shared(DeadlockPolicy::Detect);
        let (a, b) = cross_stripe_pair(&lm);
        lm.lock(tid(1), a, StdMode::Exclusive, T).unwrap();
        lm.lock(tid(2), b, StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let blocked = std::thread::spawn(move || {
            lm2.lock(tid(2), a, StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().is_empty() {
            std::thread::yield_now();
        }
        let err = lm.lock(tid(1), b, StdMode::Exclusive, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, LockError::Deadlock(b));
        lm.release_all(tid(1));
        blocked.join().unwrap().unwrap();
        lm.release_all(tid(2));
    }

    #[test]
    fn abort_waiter_resolves_cross_stripe_cycle() {
        // The external-detector path: two waiters parked on different
        // stripes form a cycle; abort_waiter must find the victim's
        // stripe and wake exactly it with a deadlock error.
        let lm = LockManager::<StdMode>::with_stripes(DeadlockPolicy::Timeout, 16);
        let lm = Arc::new(lm);
        let (a, b) = cross_stripe_pair(&lm);
        lm.lock(tid(1), a, StdMode::Exclusive, T).unwrap();
        lm.lock(tid(2), b, StdMode::Exclusive, T).unwrap();
        let lm1 = Arc::clone(&lm);
        let w1 = std::thread::spawn(move || {
            lm1.lock(tid(1), b, StdMode::Exclusive, Duration::from_secs(10))
        });
        let lm2 = Arc::clone(&lm);
        let w2 = std::thread::spawn(move || {
            lm2.lock(tid(2), a, StdMode::Exclusive, Duration::from_secs(10))
        });
        while lm.wait_graph().len() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(lm.wait_graph(), vec![(tid(1), tid(2)), (tid(2), tid(1))]);
        assert!(lm.abort_waiter(tid(2)));
        let err = w2.join().unwrap().unwrap_err();
        assert_eq!(err, LockError::Deadlock(a));
        lm.release_all(tid(2));
        w1.join().unwrap().unwrap();
        lm.release_all(tid(1));
        assert_eq!(lm.locked_object_count(), 0);
    }

    #[test]
    fn release_wakes_only_waiters_on_touched_stripes() {
        // A waiter parked on stripe(B) must still wake when its blocker
        // releases, while an unrelated holder on another stripe releasing
        // does not grant it anything.
        let lm = LockManager::<StdMode>::shared(DeadlockPolicy::Timeout);
        let (a, b) = cross_stripe_pair(&lm);
        lm.lock(tid(1), b, StdMode::Exclusive, T).unwrap();
        lm.lock(tid(3), a, StdMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.lock(tid(2), b, StdMode::Exclusive, Duration::from_secs(5))
        });
        while lm.wait_graph().is_empty() {
            std::thread::yield_now();
        }
        // Unrelated release on a different stripe: waiter stays parked.
        lm.release_all(tid(3));
        assert_eq!(lm.wait_graph(), vec![(tid(2), tid(1))]);
        lm.release_all(tid(1));
        waiter.join().unwrap().unwrap();
        assert!(lm.holds(tid(2), b));
        lm.release_all(tid(2));
    }

    /// Parks `n` exclusive waiters for distinct transactions on `o` and
    /// returns their join handles once all are registered.
    fn park_exclusive_waiters(
        lm: &Arc<LockManager<StdMode>>,
        o: ObjectId,
        ids: &[u64],
    ) -> Vec<std::thread::JoinHandle<Result<(), LockError>>> {
        let handles: Vec<_> = ids
            .iter()
            .map(|&s| {
                let lm = Arc::clone(lm);
                std::thread::spawn(move || {
                    let r = lm.lock(tid(s), o, StdMode::Exclusive, Duration::from_secs(10));
                    if r.is_ok() {
                        lm.release_all(tid(s));
                    }
                    r
                })
            })
            .collect();
        while lm.wait_graph().iter().map(|(w, _)| w).collect::<HashSet<_>>().len() < ids.len() {
            std::thread::yield_now();
        }
        handles
    }

    #[test]
    fn exclusive_herd_wakes_without_spurious_wakeups() {
        // Striped table: four exclusive waiters pile onto one object. As
        // the lock hands down the queue, each release must wake exactly
        // the next grantable waiter — never the whole herd.
        let lm = LockManager::<StdMode>::shared(DeadlockPolicy::Timeout);
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let handles = park_exclusive_waiters(&lm, obj(1), &[2, 3, 4, 5]);
        lm.release_all(tid(1));
        for h in handles {
            h.join().unwrap().unwrap();
        }
        let stats = lm.wait_stats();
        assert_eq!(stats.waits, 4);
        assert_eq!(stats.spurious, 0, "a precise wakeup must only wake a waiter it can grant");
        assert_eq!(lm.locked_object_count(), 0);
    }

    #[test]
    fn readers_wake_together_behind_a_writer() {
        // Two shared waiters behind an exclusive holder form a compatible
        // prefix: one release wakes both at once.
        let lm = LockManager::<StdMode>::shared(DeadlockPolicy::Timeout);
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let readers: Vec<_> = [2u64, 3]
            .iter()
            .map(|&s| {
                let lm = Arc::clone(&lm);
                std::thread::spawn(move || {
                    lm.lock(tid(s), obj(1), StdMode::Shared, Duration::from_secs(10))
                })
            })
            .collect();
        while lm.wait_graph().len() < 2 {
            std::thread::yield_now();
        }
        lm.release_all(tid(1));
        for r in readers {
            r.join().unwrap().unwrap();
        }
        assert_eq!(lm.holders(obj(1)).len(), 2);
        assert_eq!(lm.wait_stats().spurious, 0);
    }

    #[test]
    fn timed_out_waiter_leaves_the_queue_cleanly() {
        // W1 times out while parked behind the holder; W2, parked after
        // W1, must still be woken by the eventual release (the departed
        // waiter cannot leave a hole in the queue's wake order).
        let lm = LockManager::<StdMode>::shared(DeadlockPolicy::Timeout);
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let lm1 = Arc::clone(&lm);
        let w1 = std::thread::spawn(move || {
            lm1.lock(tid(2), obj(1), StdMode::Exclusive, Duration::from_millis(200))
        });
        let lm2 = Arc::clone(&lm);
        let w2 = std::thread::spawn(move || {
            lm2.lock(tid(3), obj(1), StdMode::Exclusive, Duration::from_secs(10))
        });
        while lm.wait_graph().len() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(w1.join().unwrap().unwrap_err(), LockError::Timeout(obj(1)));
        lm.release_all(tid(1));
        w2.join().unwrap().unwrap();
        assert!(lm.holds(tid(3), obj(1)));
        lm.release_all(tid(3));
    }

    #[test]
    fn upgrade_wakes_when_the_other_reader_releases() {
        // T1 (shared) waits to upgrade behind T2's shared hold. T2's
        // release must wake T1 even though T1 itself still holds the
        // object — self-compatibility in the wake computation.
        let lm = LockManager::<StdMode>::shared(DeadlockPolicy::Timeout);
        lm.lock(tid(1), obj(1), StdMode::Shared, T).unwrap();
        lm.lock(tid(2), obj(1), StdMode::Shared, T).unwrap();
        let lm1 = Arc::clone(&lm);
        let upgrader = std::thread::spawn(move || {
            lm1.lock(tid(1), obj(1), StdMode::Exclusive, Duration::from_secs(10))
        });
        while lm.wait_graph().is_empty() {
            std::thread::yield_now();
        }
        lm.release_all(tid(2));
        upgrader.join().unwrap().unwrap();
        assert!(!lm.try_lock(tid(3), obj(1), StdMode::Shared));
        lm.release_all(tid(1));
    }

    #[test]
    fn coarse_baseline_still_wakes_its_herd() {
        // The one-stripe historical table keeps notify-all semantics: a
        // herd of waiters on one object all make progress, at the cost of
        // spurious wakeups (which the stats must show).
        let lm = Arc::new(LockManager::<StdMode>::with_stripes(DeadlockPolicy::Timeout, 1));
        lm.lock(tid(1), obj(1), StdMode::Exclusive, T).unwrap();
        let handles = park_exclusive_waiters(&lm, obj(1), &[2, 3, 4]);
        lm.release_all(tid(1));
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_eq!(lm.wait_stats().waits, 3);
        assert_eq!(lm.locked_object_count(), 0);
    }
}
