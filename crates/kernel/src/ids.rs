//! Identifiers shared across the TABS facility.
//!
//! Naming follows §2.1.1 and §3.1.1 of the paper: objects are addressed by
//! `ObjectId`s that carry a disk (segment) address, so that the server
//! library can translate between a server's virtual addresses and the log
//! manager's disk addresses. Transaction identifiers are globally unique
//! (§3.2.3): node of origin, node incarnation, local sequence number.

use tabs_codec::{Decode, DecodeError, Encode, Reader, Writer};

/// Size in bytes of one virtual-memory page / disk sector (the paper's
/// Accent page size, §5.1: "Pages are 512 bytes").
pub const PAGE_SIZE: usize = 512;

/// Identifies one node (workstation) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Globally unique port identifier (node + node-local index).
///
/// Accent ports are node-local; the Communication Manager interposes proxy
/// ports for remote destinations. Carrying the node in the identifier lets
/// proxies be recognized and lets tests assert locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId {
    /// Node that owns the receive right.
    pub node: NodeId,
    /// Node-local port index.
    pub index: u64,
}

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}p{}", self.node, self.index)
    }
}

/// Identifies one recoverable segment (a disk file mapped into a data
/// server's virtual memory, §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId {
    /// Node whose disk backs the segment.
    pub node: NodeId,
    /// Node-local segment index.
    pub index: u32,
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}s{}", self.node, self.index)
    }
}

/// Identifies one page of a recoverable segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning segment.
    pub segment: SegmentId,
    /// Page number within the segment.
    pub page: u32,
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.segment, self.page)
    }
}

/// A logical object identifier: a byte range of a recoverable segment.
///
/// Produced by the server library's `create_object_id` (Table 3-1 "address
/// arithmetic"); the embedded segment address is what the Recovery Manager
/// logs, and what `convert_object_id_to_virtual_address` maps back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Segment holding the object's permanent representation.
    pub segment: SegmentId,
    /// Byte offset of the object within the segment.
    pub offset: u64,
    /// Object length in bytes.
    pub len: u32,
}

impl ObjectId {
    /// Creates an object identifier for `len` bytes at `offset`.
    pub fn new(segment: SegmentId, offset: u64, len: u32) -> Self {
        Self { segment, offset, len }
    }

    /// First page covered by this object.
    pub fn first_page(&self) -> PageId {
        PageId { segment: self.segment, page: (self.offset / PAGE_SIZE as u64) as u32 }
    }

    /// Iterates over every page the object's byte range touches.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        let first = self.offset / PAGE_SIZE as u64;
        let last = if self.len == 0 {
            first
        } else {
            (self.offset + u64::from(self.len) - 1) / PAGE_SIZE as u64
        };
        let seg = self.segment;
        (first..=last).map(move |p| PageId { segment: seg, page: p as u32 })
    }

    /// Whether the byte range crosses a page boundary.
    pub fn spans_pages(&self) -> bool {
        self.pages().count() > 1
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{}:{}", self.segment, self.offset, self.len)
    }
}

/// A transaction identifier, globally unique across nodes and crashes.
///
/// §3.2.3: the Transaction Manager allocates globally unique transaction
/// identifiers. Uniqueness across crashes comes from the incarnation number,
/// which the Recovery Manager advances at every node restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid {
    /// Node that began the (top-level ancestor) transaction.
    pub node: NodeId,
    /// Node incarnation (restart count) at allocation time.
    pub incarnation: u32,
    /// Node-local sequence number.
    pub seq: u64,
}

impl Tid {
    /// The distinguished null transaction identifier. Passing it to
    /// `begin_transaction` creates a new top-level transaction (§3.1.2).
    pub const NULL: Tid = Tid { node: NodeId(0), incarnation: 0, seq: 0 };

    /// Whether this is the null identifier.
    pub fn is_null(&self) -> bool {
        *self == Tid::NULL
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "T(null)")
        } else {
            write!(f, "T{}.{}.{}", self.node.0, self.incarnation, self.seq)
        }
    }
}

impl Encode for NodeId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodeId(u16::decode(r)?))
    }
}

impl Encode for PortId {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        self.index.encode(w);
    }
}

impl Decode for PortId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PortId { node: NodeId::decode(r)?, index: u64::decode(r)? })
    }
}

impl Encode for SegmentId {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        self.index.encode(w);
    }
}

impl Decode for SegmentId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SegmentId { node: NodeId::decode(r)?, index: u32::decode(r)? })
    }
}

impl Encode for PageId {
    fn encode(&self, w: &mut Writer) {
        self.segment.encode(w);
        self.page.encode(w);
    }
}

impl Decode for PageId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PageId { segment: SegmentId::decode(r)?, page: u32::decode(r)? })
    }
}

impl Encode for ObjectId {
    fn encode(&self, w: &mut Writer) {
        self.segment.encode(w);
        self.offset.encode(w);
        self.len.encode(w);
    }
}

impl Decode for ObjectId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ObjectId {
            segment: SegmentId::decode(r)?,
            offset: u64::decode(r)?,
            len: u32::decode(r)?,
        })
    }
}

impl Encode for Tid {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        self.incarnation.encode(w);
        self.seq.encode(w);
    }
}

impl Decode for Tid {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Tid { node: NodeId::decode(r)?, incarnation: u32::decode(r)?, seq: u64::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabs_codec::{Decode, Encode};

    #[test]
    fn object_id_single_page() {
        let seg = SegmentId { node: NodeId(1), index: 0 };
        let oid = ObjectId::new(seg, 10, 4);
        let pages: Vec<_> = oid.pages().collect();
        assert_eq!(pages, vec![PageId { segment: seg, page: 0 }]);
        assert!(!oid.spans_pages());
    }

    #[test]
    fn object_id_page_straddle() {
        let seg = SegmentId { node: NodeId(1), index: 0 };
        // 8 bytes starting 4 before a page boundary straddle two pages.
        let oid = ObjectId::new(seg, PAGE_SIZE as u64 - 4, 8);
        let pages: Vec<_> = oid.pages().collect();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].page, 0);
        assert_eq!(pages[1].page, 1);
        assert!(oid.spans_pages());
    }

    #[test]
    fn object_id_exact_page_end() {
        let seg = SegmentId { node: NodeId(1), index: 0 };
        // Ends exactly at the boundary: stays on one page.
        let oid = ObjectId::new(seg, PAGE_SIZE as u64 - 4, 4);
        assert_eq!(oid.pages().count(), 1);
    }

    #[test]
    fn object_id_zero_len() {
        let seg = SegmentId { node: NodeId(1), index: 0 };
        let oid = ObjectId::new(seg, 0, 0);
        assert_eq!(oid.pages().count(), 1);
    }

    #[test]
    fn object_id_multi_page_span() {
        let seg = SegmentId { node: NodeId(2), index: 3 };
        let oid = ObjectId::new(seg, 0, 3 * PAGE_SIZE as u32);
        assert_eq!(oid.pages().count(), 3);
    }

    #[test]
    fn null_tid() {
        assert!(Tid::NULL.is_null());
        let t = Tid { node: NodeId(1), incarnation: 0, seq: 1 };
        assert!(!t.is_null());
        assert_eq!(format!("{}", Tid::NULL), "T(null)");
        assert_eq!(format!("{t}"), "T1.0.1");
    }

    #[test]
    fn id_codec_roundtrips() {
        let tid = Tid { node: NodeId(7), incarnation: 3, seq: 99 };
        assert_eq!(Tid::decode_all(&tid.encode_to_vec()).unwrap(), tid);

        let oid = ObjectId::new(SegmentId { node: NodeId(7), index: 1 }, 12345, 16);
        assert_eq!(ObjectId::decode_all(&oid.encode_to_vec()).unwrap(), oid);

        let pid = PortId { node: NodeId(2), index: 42 };
        assert_eq!(PortId::decode_all(&pid.encode_to_vec()).unwrap(), pid);
    }

    #[test]
    fn display_formats() {
        let seg = SegmentId { node: NodeId(1), index: 2 };
        assert_eq!(format!("{seg}"), "n1s2");
        let page = PageId { segment: seg, page: 9 };
        assert_eq!(format!("{page}"), "n1s2.9");
        let oid = ObjectId::new(seg, 100, 8);
        assert_eq!(format!("{oid}"), "n1s2+100:8");
    }
}
