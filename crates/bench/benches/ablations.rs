//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! 1. **Value vs operation logging** (§2.1.3, §7: "we plan to empirically
//!    compare the relative merits of value and operation logging"): the
//!    same logical update — incrementing a counter inside a multi-word
//!    object — logged both ways. Operation logging writes one small
//!    record; value logging writes old/new images of the whole object.
//! 2. **Deadlock time-out vs detection** (§2.1.3): two transactions built
//!    to collide; time-outs burn the full wait, detection fails fast.
//! 3. **Checkpoint interval** (§2.1.3): crash-recovery time as a function
//!    of how much log follows the last checkpoint.
//! 4. **Type-specific locking** (§2.1.3, §4.6): commuting `add` locks on
//!    the operation-logged counter let concurrent uncommitted
//!    transactions increment the same object; strict exclusive locking
//!    (the integer array) serializes them behind lock waits.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tabs_core::{Cluster, NodeId, ObjectId, SegmentId, Tid};
use tabs_kernel::{BufferPool, MemDisk, PerfCounters, SegmentSpec};
use tabs_lock::{DeadlockPolicy, LockError, LockManager, StdMode};
use tabs_rm::{OperationHandler, RecoveryManager};
use tabs_wal::{LogManager, MemLogDevice};

fn seg() -> SegmentId {
    SegmentId { node: NodeId(1), index: 0 }
}

fn obj(i: u64, len: u32) -> ObjectId {
    ObjectId::new(seg(), i * 256, len)
}

struct Rig {
    rm: Arc<RecoveryManager>,
    pool: Arc<BufferPool>,
}

fn rig() -> Rig {
    let perf = PerfCounters::new();
    let pool = BufferPool::new(64, Arc::clone(&perf));
    pool.register_segment(SegmentSpec {
        id: seg(),
        name: "ablate".into(),
        disk: MemDisk::new(256),
        base_sector: 0,
        pages: 256,
    })
    .unwrap();
    let log = LogManager::open(MemLogDevice::new(1 << 30), Arc::clone(&perf)).unwrap();
    let rm = RecoveryManager::new(NodeId(1), log, Arc::clone(&pool), perf);
    pool.set_gate(rm.gate());
    Rig { rm, pool }
}

struct AddHandler {
    pool: Arc<BufferPool>,
}

impl OperationHandler for AddHandler {
    fn redo(&self, o: ObjectId, _n: &str, redo: &[u8]) -> Result<(), String> {
        let amt = u64::from_le_bytes(redo.try_into().map_err(|_| "args")?);
        let page = o.first_page();
        self.pool
            .with_page_mut(page, |d| {
                let off = (o.offset % 512) as usize;
                let cur = u64::from_le_bytes(d[off..off + 8].try_into().unwrap());
                d[off..off + 8].copy_from_slice(&cur.wrapping_add(amt).to_le_bytes());
            })
            .map_err(|e| e.to_string())
    }
    fn undo(&self, o: ObjectId, n: &str, undo: &[u8]) -> Result<(), String> {
        let amt = u64::from_le_bytes(undo.try_into().map_err(|_| "args")?);
        self.redo(o, n, &amt.wrapping_neg().to_le_bytes())
    }
}

/// Value vs operation logging: latency and log bytes per committed update
/// of a 200-byte object.
fn value_vs_operation_logging(c: &mut Criterion) {
    let mut g = c.benchmark_group("logging");
    let mut seq = 1u64;

    let r = rig();
    let o = obj(0, 200);
    g.bench_function("value_logging_update", |b| {
        b.iter(|| {
            let tid = Tid { node: NodeId(1), incarnation: 1, seq };
            seq += 1;
            r.rm.log_begin(tid, Tid::NULL);
            // Old/new images of the whole 200-byte object.
            let old = vec![0u8; 200];
            let new = vec![1u8; 200];
            r.rm.log_value_update(tid, o, old, new);
            r.rm.log_commit(tid).unwrap();
        })
    });

    let r2 = rig();
    r2.rm.register_handler(seg(), Arc::new(AddHandler { pool: Arc::clone(&r2.pool) }));
    g.bench_function("operation_logging_update", |b| {
        b.iter(|| {
            let tid = Tid { node: NodeId(1), incarnation: 1, seq };
            seq += 1;
            r2.rm.log_begin(tid, Tid::NULL);
            // One compact operation record for the same logical update.
            r2.rm.log_operation(
                tid,
                o,
                "add",
                1u64.to_le_bytes().to_vec(),
                1u64.to_le_bytes().to_vec(),
            );
            r2.rm.log_commit(tid).unwrap();
        })
    });
    g.finish();

    // Report log volume per update outside Criterion (shape evidence).
    let r3 = rig();
    let before = r3.rm.log().usage().0;
    for i in 0..100u64 {
        let tid = Tid { node: NodeId(1), incarnation: 2, seq: i + 1 };
        r3.rm.log_begin(tid, Tid::NULL);
        r3.rm.log_value_update(tid, o, vec![0u8; 200], vec![1u8; 200]);
        r3.rm.log_commit(tid).unwrap();
    }
    let value_bytes = (r3.rm.log().usage().0 - before) / 100;
    let r4 = rig();
    let before = r4.rm.log().usage().0;
    for i in 0..100u64 {
        let tid = Tid { node: NodeId(1), incarnation: 2, seq: i + 1 };
        r4.rm.log_begin(tid, Tid::NULL);
        r4.rm.log_operation(
            tid,
            o,
            "add",
            1u64.to_le_bytes().to_vec(),
            1u64.to_le_bytes().to_vec(),
        );
        r4.rm.log_commit(tid).unwrap();
    }
    let op_bytes = (r4.rm.log().usage().0 - before) / 100;
    eprintln!("log bytes per update: value={value_bytes} operation={op_bytes}");
}

/// Deadlock resolution: time-out (the paper's policy) vs waits-for cycle
/// detection (the Obermarck-style extension) on a guaranteed collision.
fn deadlock_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("deadlock");
    g.sample_size(10);
    for (label, policy, timeout) in [
        ("timeout_resolution", DeadlockPolicy::Timeout, Duration::from_millis(30)),
        ("detection_resolution", DeadlockPolicy::Detect, Duration::from_secs(5)),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let lm = Arc::new(LockManager::<StdMode>::new(policy));
                let t1 = Tid { node: NodeId(1), incarnation: 1, seq: 1 };
                let t2 = Tid { node: NodeId(1), incarnation: 1, seq: 2 };
                lm.lock(t1, obj(1, 8), StdMode::Exclusive, timeout).unwrap();
                lm.lock(t2, obj(2, 8), StdMode::Exclusive, timeout).unwrap();
                let lm2 = Arc::clone(&lm);
                let waiter = std::thread::spawn(move || {
                    lm2.lock(t2, obj(1, 8), StdMode::Exclusive, timeout)
                });
                std::thread::sleep(Duration::from_millis(2));
                // This closes the cycle: detection refuses instantly,
                // time-out burns the full wait.
                let r = lm.lock(t1, obj(2, 8), StdMode::Exclusive, timeout);
                assert!(matches!(r, Err(LockError::Deadlock(_)) | Err(LockError::Timeout(_))));
                lm.release_all(t1);
                let _ = waiter.join().unwrap();
                lm.release_all(t2);
            })
        });
    }
    g.finish();
}

/// Recovery time vs checkpoint spacing: more committed work since the
/// last truncation means a longer scan.
fn checkpoint_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_scan");
    g.sample_size(10);
    for &txns in &[50u64, 200, 800] {
        g.bench_with_input(BenchmarkId::from_parameter(txns), &txns, |b, &txns| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let cluster = Cluster::new();
                    let node = cluster.boot_node(NodeId(1));
                    let s = node.add_segment("data", 64);
                    node.recover().unwrap();
                    for i in 0..txns {
                        let tid = node.tm.begin(Tid::NULL).unwrap();
                        let o = ObjectId::new(s, (i % 64) * 8, 8);
                        node.rm.log_value_update(tid, o, vec![0; 8], i.to_le_bytes().to_vec());
                        node.rm.log_commit(tid).unwrap();
                    }
                    node.crash();
                    let node = cluster.boot_node(NodeId(1));
                    let _ = node.add_segment("data", 64);
                    let t0 = Instant::now();
                    node.recover().unwrap();
                    total += t0.elapsed();
                    node.shutdown();
                }
                total
            })
        });
    }
    g.finish();
}

/// Type-specific locking vs strict read/write locking: two transactions
/// increment the same hot object before either commits. Commuting add
/// locks admit both immediately; exclusive locks force the second to wait
/// for (and here, time out against) the first.
fn type_specific_locking(c: &mut Criterion) {
    use tabs_servers::{CounterClient, CounterServer, IntArrayClient, IntArrayServer};

    let cluster = Cluster::new();
    let node = cluster.boot_node(NodeId(1));
    let ctr_srv = CounterServer::spawn(&node, "tsl-ctr", 4).unwrap();
    let arr_srv = IntArrayServer::spawn(&node, "tsl-arr", 4).unwrap();
    node.recover().unwrap();
    let app = node.app();
    let ctr = CounterClient::new(app.clone(), ctr_srv.send_right());
    let arr = IntArrayClient::new(app.clone(), arr_srv.send_right());

    let mut g = c.benchmark_group("type_specific_locking");
    g.sample_size(10);
    g.bench_function("commuting_add_locks", |b| {
        b.iter(|| {
            // Two open transactions hit the same counter; both proceed.
            let t1 = app.begin_transaction(Tid::NULL).unwrap();
            let t2 = app.begin_transaction(Tid::NULL).unwrap();
            ctr.add(t1, 0, 1).unwrap();
            ctr.add(t2, 0, 1).unwrap();
            assert!(app.end_transaction(t1).unwrap().is_committed());
            assert!(app.end_transaction(t2).unwrap().is_committed());
        })
    });
    g.bench_function("exclusive_locks", |b| {
        b.iter(|| {
            // Same workload on the strictly-locked array: the second add
            // waits out the first transaction's lock and aborts.
            let t1 = app.begin_transaction(Tid::NULL).unwrap();
            let t2 = app.begin_transaction(Tid::NULL).unwrap();
            arr.add(t1, 0, 1).unwrap();
            let blocked = arr.add(t2, 0, 1);
            assert!(blocked.is_err(), "exclusive lock serializes");
            assert!(app.end_transaction(t1).unwrap().is_committed());
            let _ = app.abort_transaction(t2);
        })
    });
    g.finish();
    node.shutdown();
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    targets = value_vs_operation_logging, deadlock_policies, checkpoint_interval,
        type_specific_locking
}
criterion_main!(ablations);
