//! The TABS server library (§3.1.1, Table 3-1).
//!
//! Data servers are programmed against this library. It supplies:
//!
//! - **Startup**: `InitServer` / `ReadPermanentData` / `RecoverServer` /
//!   `AcceptRequests` — constructor, segment mapping, recovery-handler
//!   registration and the request loop.
//! - **Address arithmetic**: `CreateObjectID` /
//!   `ConvertObjectIDtoVirtualAddress` — [`OpCtx::create_object_id`] and
//!   [`OpCtx::object_offset`].
//! - **Locking**: `LockObject`, `ConditionallyLockObject`,
//!   `IsObjectLocked`, `LockAndMark`. "All unlocking is done automatically
//!   by the server library at commit or abort time."
//! - **Paging control & logging**: `PinObject`, `UnPinObject`,
//!   `UnPinAllObjects`, `PinAndBuffer`, `LogAndUnPin`,
//!   `PinAndBufferMarkedObjects`, `LogAndUnPinMarkedObjects` — plus the
//!   operation-logging primitive the paper lists as future work (§7).
//! - **Transaction management**: `ExecuteTransaction` runs a procedure in
//!   a new top-level transaction (used by the I/O server, §4.3).
//!
//! **Coroutine model** (§2.1.1/§3.1.1): "Lightweight processes use a
//! coroutine mechanism embedded within every data server. The server
//! library treats each incoming request as a separate coroutine
//! invocation. A coroutine switch is performed only when an operation
//! waits, e.g., for a lock or for starting a transaction." Here each
//! request runs on its own thread but *serialized by the server monitor*;
//! the monitor is released exactly at the paper's wait points, so data
//! servers enjoy the same monitor semantics the weak queue server relies
//! on for its unlocked tail pointer (§4.2).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

use tabs_detect::Detector;
use tabs_kernel::{Kernel, MappedSegment, Message, ObjectId, PortClass, PortId, SegmentId, Tid};
use tabs_lock::{DeadlockPolicy, LockError, LockManager, StdMode};
use tabs_obs::{Counter, TraceCollector};
use tabs_proto::{Deadline, RequestRef, ServerError};
use tabs_rm::{OperationHandler, RecoveryManager};
use tabs_tm::{CommitPathPolicy, Participant, TransactionManager};

use tabs_codec::DecodeRef;

pub mod quorum;

pub use quorum::{QuorumError, QuorumPolicy};

/// Everything a data server needs from its node.
#[derive(Clone)]
pub struct ServerDeps {
    /// The node's kernel.
    pub kernel: Kernel,
    /// The node's Recovery Manager.
    pub rm: Arc<RecoveryManager>,
    /// The node's Transaction Manager.
    pub tm: Arc<TransactionManager>,
    /// Optional trace collector; servers built from these deps record
    /// their lock activity against it.
    pub trace: Option<Arc<TraceCollector>>,
    /// Optional distributed deadlock detector; servers built from these
    /// deps export their waits-for edges to it.
    pub detect: Option<Arc<Detector>>,
    /// `admission.shed` counter: requests rejected by the admission gate.
    pub admission_shed: Option<Counter>,
    /// `deadline.expired` counter: requests rejected (or waits cut short)
    /// because their end-to-end deadline had passed.
    pub deadline_expired: Option<Counter>,
}

impl ServerDeps {
    /// Bundles the node facilities a data server needs.
    pub fn new(kernel: Kernel, rm: Arc<RecoveryManager>, tm: Arc<TransactionManager>) -> Self {
        Self {
            kernel,
            rm,
            tm,
            trace: None,
            detect: None,
            admission_shed: None,
            deadline_expired: None,
        }
    }

    /// Attaches the node's trace collector.
    pub fn with_trace(mut self, trace: Arc<TraceCollector>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches the node's distributed deadlock detector.
    pub fn with_detect(mut self, detect: Arc<Detector>) -> Self {
        self.detect = Some(detect);
        self
    }

    /// Wires the node's overload counters: `admission.shed` (requests
    /// rejected by the admission gate) and `deadline.expired` (work
    /// rejected because its budget ran out).
    pub fn with_admission_metrics(mut self, shed: Counter, expired: Counter) -> Self {
        self.admission_shed = Some(shed);
        self.deadline_expired = Some(expired);
        self
    }
}

/// Configuration for one data server. Construct with
/// [`ServerConfig::new`] and the builder methods; the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking callers.
#[derive(Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Server name (used for Transaction Manager enlistment and threads).
    pub name: String,
    /// The recoverable segment holding the server's permanent data.
    pub segment: SegmentId,
    /// Lock wait time-out (the paper's deadlock resolution, §2.1.3).
    pub lock_timeout: Duration,
    /// Deadlock policy; `Timeout` is the paper's, `Detect` the extension.
    pub deadlock_policy: DeadlockPolicy,
    /// Number of lock-table stripes (hash partitions of the lock name
    /// space, each with its own mutex and wait queue).
    pub lock_stripes: usize,
    /// Admission limit: the maximum number of transactions this server
    /// will have in flight at once. A request that would *admit a new
    /// transaction* past the limit is shed with
    /// [`ServerError::Overloaded`] before it enlists, locks, or logs
    /// anything; requests of already-admitted transactions always pass
    /// (shedding those would strand partially-done work in 2PC). `None`
    /// (the default) accepts unboundedly, the seed behaviour.
    pub admission_limit: Option<usize>,
    /// The `retry_after_hint` returned with [`ServerError::Overloaded`]:
    /// how long shed clients should wait before retrying.
    pub retry_after_hint: Duration,
}

impl ServerConfig {
    /// A standard configuration.
    pub fn new(name: &str, segment: SegmentId) -> Self {
        Self {
            name: name.to_string(),
            segment,
            lock_timeout: Duration::from_millis(300),
            deadlock_policy: DeadlockPolicy::Timeout,
            lock_stripes: tabs_lock::DEFAULT_LOCK_STRIPES,
            admission_limit: None,
            retry_after_hint: Duration::from_millis(5),
        }
    }

    /// Overrides the lock wait time-out ("time-outs, which are explicitly
    /// set by system users", §2.1.3).
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Overrides the deadlock policy (`Timeout` is the paper's; `Detect`
    /// the waits-for-graph extension).
    pub fn with_deadlock_policy(mut self, policy: DeadlockPolicy) -> Self {
        self.deadlock_policy = policy;
        self
    }

    /// Overrides the lock-table stripe count (clamped to at least 1; 1
    /// reproduces the original single-mutex lock table).
    pub fn with_lock_stripes(mut self, stripes: usize) -> Self {
        self.lock_stripes = stripes.max(1);
        self
    }

    /// Caps concurrent in-flight transactions; excess new work is shed
    /// with [`ServerError::Overloaded`] before touching any object.
    pub fn with_admission_limit(mut self, limit: usize) -> Self {
        self.admission_limit = Some(limit.max(1));
        self
    }

    /// Overrides the backoff hint shed clients receive.
    pub fn with_retry_after_hint(mut self, hint: Duration) -> Self {
        self.retry_after_hint = hint;
        self
    }
}

type OpRedo = Box<dyn Fn(ObjectId, &[u8]) -> Result<(), String> + Send + Sync>;
type OpUndo = Box<dyn Fn(ObjectId, &[u8]) -> Result<(), String> + Send + Sync>;

/// Per-transaction server-side bookkeeping.
#[derive(Default)]
struct TxCtx {
    /// Pinned objects (for `UnPinAllObjects` and leak checks).
    pinned: Vec<ObjectId>,
    /// Old images captured by `PinAndBuffer`, awaiting `LogAndUnPin`.
    buffered: HashMap<ObjectId, Vec<u8>>,
    /// The `LockAndMark` "to be modified" queue.
    marked: Vec<ObjectId>,
    /// Whether the transaction performed updates here (drives the
    /// read-only commit optimization).
    updates: bool,
    /// The earliest end-to-end deadline seen on this transaction's
    /// requests; lock waits cap themselves at its remaining budget.
    deadline: Option<Deadline>,
}

struct ServerInner {
    name: String,
    kernel: Kernel,
    rm: Arc<RecoveryManager>,
    tm: Arc<TransactionManager>,
    locks: Arc<LockManager<StdMode>>,
    segment: MappedSegment,
    seg_id: SegmentId,
    lock_timeout: Duration,
    admission_limit: Option<usize>,
    retry_after_hint: Duration,
    admission_shed: Option<Counter>,
    deadline_expired: Option<Counter>,
    /// The coroutine monitor: at most one request body runs at a time.
    monitor: Mutex<()>,
    tx: Mutex<HashMap<Tid, TxCtx>>,
    ops: Mutex<HashMap<String, (OpRedo, OpUndo)>>,
    accepting: AtomicBool,
}

/// One data server built on the server library.
#[derive(Clone)]
pub struct DataServer {
    inner: Arc<ServerInner>,
    port: PortId,
    send: tabs_kernel::SendRight,
    rx: Arc<Mutex<Option<tabs_kernel::ReceiveRight>>>,
}

impl std::fmt::Debug for DataServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataServer")
            .field("name", &self.inner.name)
            .field("port", &self.port)
            .finish()
    }
}

/// The dispatch function a server supplies to `AcceptRequests`.
pub type Dispatch =
    Arc<dyn Fn(&OpCtx<'_>, u32, &[u8]) -> Result<Vec<u8>, ServerError> + Send + Sync>;

impl DataServer {
    /// `InitServer` + `ReadPermanentData`: creates the server, maps its
    /// recoverable segment, allocates its request port, and registers its
    /// recovery handler with the Recovery Manager (`RecoverServer`).
    ///
    /// The segment must already be registered with the node's buffer pool.
    pub fn new(deps: &ServerDeps, config: ServerConfig) -> Result<Self, ServerError> {
        let segment = MappedSegment::new(Arc::clone(deps.rm.pool()), config.segment)
            .map_err(|e| ServerError::Storage(e.to_string()))?;
        let (send, rx) = deps.kernel.allocate_port(PortClass::DataServer);
        let inner = Arc::new(ServerInner {
            name: config.name,
            kernel: deps.kernel.clone(),
            rm: Arc::clone(&deps.rm),
            tm: Arc::clone(&deps.tm),
            locks: LockManager::shared_with_stripes(config.deadlock_policy, config.lock_stripes),
            segment,
            seg_id: config.segment,
            lock_timeout: config.lock_timeout,
            admission_limit: config.admission_limit,
            retry_after_hint: config.retry_after_hint,
            admission_shed: deps.admission_shed.clone(),
            deadline_expired: deps.deadline_expired.clone(),
            monitor: Mutex::new(()),
            tx: Mutex::new(HashMap::new()),
            ops: Mutex::new(HashMap::new()),
            accepting: AtomicBool::new(false),
        });
        if let Some(trace) = &deps.trace {
            inner.locks.set_trace(Arc::clone(trace));
        }
        if let Some(detect) = &deps.detect {
            // Export this server's waits-for edges to the node's
            // distributed deadlock detector.
            detect.register_source(Arc::clone(&inner.locks) as _);
        }
        // `RecoverServer`: the Recovery Manager dispatches this server's
        // operation-logged records (and in-doubt relocks) through us.
        deps.rm.register_handler(
            config.segment,
            Arc::new(ServerRecovery { inner: Arc::clone(&inner) }),
        );
        Ok(DataServer { port: send.id(), send, inner, rx: Arc::new(Mutex::new(Some(rx))) })
    }

    /// The server's request port (register it with the Name Server).
    pub fn port_id(&self) -> PortId {
        self.port
    }

    /// A send right to this server (local callers).
    pub fn send_right(&self) -> tabs_kernel::SendRight {
        self.send.clone()
    }

    /// The server's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The mapped recoverable segment, for initialization-time access
    /// before requests are accepted.
    pub fn segment(&self) -> &MappedSegment {
        &self.inner.segment
    }

    /// The server's lock manager (exposed for tests and tools).
    pub fn locks(&self) -> &Arc<LockManager<StdMode>> {
        &self.inner.locks
    }

    /// Registers redo/undo functions for an operation-logged operation
    /// (the operation-logging primitives of §7's future-work list).
    pub fn register_operation(
        &self,
        name: &str,
        redo: impl Fn(ObjectId, &[u8]) -> Result<(), String> + Send + Sync + 'static,
        undo: impl Fn(ObjectId, &[u8]) -> Result<(), String> + Send + Sync + 'static,
    ) {
        self.inner.ops.lock().insert(name.to_string(), (Box::new(redo), Box::new(undo)));
    }

    /// `AcceptRequests`: starts the request loop. Each incoming request
    /// becomes a coroutine invocation serialized by the server monitor.
    pub fn accept_requests(&self, dispatch: Dispatch) {
        let rx = self.rx.lock().take().expect("accept_requests called twice");
        let inner = Arc::clone(&self.inner);
        inner.accepting.store(true, Ordering::Release);
        let participant: Arc<dyn Participant> =
            Arc::new(ServerParticipant { inner: Arc::clone(&self.inner) });
        // A coroutine per request (§3.1.1): the OS thread is the stack and
        // the monitor provides coroutine semantics. Threads come from a
        // cache so sustained load does not pay a spawn per call; the pool
        // spawns rather than queues when no worker is parked, so a request
        // can never stall behind a coroutine blocked in a lock wait.
        let workers = tabs_kernel::WorkerPool::new(&format!("ds-{}", self.inner.name));
        self.inner.kernel.spawn(&format!("ds-{}", self.inner.name), move || loop {
            match rx.recv() {
                Ok(msg) => {
                    let inner = Arc::clone(&inner);
                    let dispatch = Arc::clone(&dispatch);
                    let participant = Arc::clone(&participant);
                    workers.execute(move || {
                        ServerInner::serve_one(inner, dispatch, participant, msg);
                    });
                }
                Err(_) => return,
            }
        });
    }
}

impl ServerInner {
    fn serve_one(
        inner: Arc<ServerInner>,
        dispatch: Dispatch,
        participant: Arc<dyn Participant>,
        msg: Message,
    ) {
        let reply = msg.reply;
        // Borrowed decode: the argument bytes are dispatched straight out
        // of the message buffer instead of being copied per request.
        let req = match RequestRef::decode_ref_all(&msg.body) {
            Ok(r) => r,
            Err(e) => {
                if let Some(r) = reply {
                    let _ = r.send_unmetered(tabs_proto::rpc::response_message(Err(
                        ServerError::BadRequest(e.to_string()),
                    )));
                }
                return;
            }
        };
        // TransactionIsAborted: refuse work for aborted transactions.
        if !req.tid.is_null() && inner.tm.is_aborted(req.tid) {
            if let Some(r) = reply {
                let _ = r.send_unmetered(tabs_proto::rpc::response_message(Err(
                    ServerError::Aborted(format!("{}", req.tid)),
                )));
            }
            return;
        }
        // Deadline gate: work whose end-to-end budget has already run out
        // is refused here — before the admission check, the enlistment,
        // the monitor, and any lock or log — so retry storms of expired
        // work cost the server nothing but this decode.
        if let Some(d) = req.deadline {
            if d.is_expired() {
                if let Some(c) = &inner.deadline_expired {
                    c.inc();
                }
                if let Some(r) = reply {
                    let _ = r.send_unmetered(tabs_proto::rpc::response_message(Err(
                        ServerError::DeadlineExceeded,
                    )));
                }
                return;
            }
        }
        // Admission gate: a request that would admit a *new* transaction
        // past the in-flight limit is shed before it enlists, locks, or
        // logs anything (so rejection leaks nothing — no 2PC state, no
        // WAL records, no locks). Requests of already-admitted
        // transactions always pass: shedding those would strand
        // partially-done work.
        if !req.tid.is_null() {
            if let Some(limit) = inner.admission_limit {
                let tx = inner.tx.lock();
                if !tx.contains_key(&req.tid) && tx.len() >= limit {
                    drop(tx);
                    if let Some(c) = &inner.admission_shed {
                        c.inc();
                    }
                    if let Some(r) = reply {
                        let _ = r.send_unmetered(tabs_proto::rpc::response_message(Err(
                            ServerError::Overloaded { retry_after_hint: inner.retry_after_hint },
                        )));
                    }
                    return;
                }
            }
        }
        // Enlist with the Transaction Manager on first contact (§3.2.3).
        if !req.tid.is_null() {
            let mut tx = inner.tx.lock();
            match tx.entry(req.tid) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(TxCtx { deadline: req.deadline, ..TxCtx::default() });
                    drop(tx);
                    inner.tm.enlist(req.tid, &inner.name, Arc::clone(&participant));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    // Later requests tighten (never loosen) the budget.
                    if let Some(d) = req.deadline {
                        let ctx = e.get_mut();
                        ctx.deadline = Some(match ctx.deadline {
                            Some(prev) => prev.min(d),
                            None => d,
                        });
                    }
                }
            }
        }
        // Enter the monitor: the coroutine runs.
        let guard = inner.monitor.lock();
        let ctx = OpCtx { server: &inner, tid: req.tid, guard: RefCell::new(Some(guard)) };
        let result = dispatch(&ctx, req.opcode, req.args);
        drop(ctx);
        if let Some(r) = reply {
            let _ = r.send_unmetered(tabs_proto::rpc::response_message(result));
        }
    }

    fn tx_updates(&self, tid: Tid) -> bool {
        self.tx.lock().get(&tid).map(|c| c.updates).unwrap_or(false)
    }

    fn tx_deadline(&self, tid: Tid) -> Option<Deadline> {
        self.tx.lock().get(&tid).and_then(|c| c.deadline)
    }
}

/// The Transaction Manager's participant hooks for a library server.
struct ServerParticipant {
    inner: Arc<ServerInner>,
}

impl Participant for ServerParticipant {
    fn prepare(&self, tid: Tid) -> Result<bool, String> {
        // The checkpoint protocol requires no pins survive an operation;
        // a transaction that leaked pins is refused (programming error).
        let tx = self.inner.tx.lock();
        if let Some(ctx) = tx.get(&tid) {
            if !ctx.pinned.is_empty() {
                return Err(format!("transaction {tid} left {} objects pinned", ctx.pinned.len()));
            }
            if !ctx.buffered.is_empty() {
                return Err(format!("transaction {tid} has unlogged buffered objects"));
            }
            let mut updates = ctx.updates;
            if !updates && self.inner.tm.commit_paths() == CommitPathPolicy::Fast {
                // Fast policy: the read-only voter drop-out additionally
                // requires that nothing stronger than an S-lock is held
                // here — the lock manager's classification, belt and
                // braces over the updates flag (writes always take X
                // locks, so the answer matches the seed path).
                updates = !self.inner.locks.holds_only_shared(tid);
            }
            Ok(updates)
        } else {
            Ok(false)
        }
    }

    fn finish(&self, tid: Tid, _committed: bool) {
        // "All unlocking is done automatically by the server library at
        // commit or abort time" (§3.1.1). Undo itself was already applied
        // by the Recovery Manager on the abort path.
        self.inner.locks.release_all(tid);
        self.inner.tx.lock().remove(&tid);
    }

    fn commit_subtransaction(&self, child: Tid, parent: Tid) {
        self.inner.locks.transfer(child, parent);
        let mut tx = self.inner.tx.lock();
        let child_ctx = tx.remove(&child);
        if let Some(cc) = child_ctx {
            let pc = tx.entry(parent).or_default();
            pc.updates |= cc.updates;
            pc.pinned.extend(cc.pinned);
        }
    }
}

/// The Recovery Manager's dispatch into this server for operation-logged
/// records and in-doubt relocking.
struct ServerRecovery {
    inner: Arc<ServerInner>,
}

impl OperationHandler for ServerRecovery {
    fn redo(&self, object: ObjectId, name: &str, redo: &[u8]) -> Result<(), String> {
        let ops = self.inner.ops.lock();
        let (redo_fn, _) = ops.get(name).ok_or_else(|| format!("unknown op {name}"))?;
        redo_fn(object, redo)
    }

    fn undo(&self, object: ObjectId, name: &str, undo: &[u8]) -> Result<(), String> {
        let ops = self.inner.ops.lock();
        let (_, undo_fn) = ops.get(name).ok_or_else(|| format!("unknown op {name}"))?;
        undo_fn(object, undo)
    }

    fn relock(&self, tid: Tid, object: ObjectId) {
        // Recovery runs before requests are accepted: no contention.
        let _ = self.inner.locks.try_lock(tid, object, StdMode::Exclusive);
        // Re-enlist with the Transaction Manager: when the in-doubt
        // transaction's outcome arrives, the phase-2 finish must reach
        // this server to release the relocked objects (without this, an
        // in-doubt transaction resolved after recovery leaked its locks).
        let mut tx = self.inner.tx.lock();
        if let std::collections::hash_map::Entry::Vacant(e) = tx.entry(tid) {
            e.insert(TxCtx::default());
            drop(tx);
            let participant: Arc<dyn Participant> =
                Arc::new(ServerParticipant { inner: Arc::clone(&self.inner) });
            self.inner.tm.enlist(tid, &self.inner.name, participant);
        }
    }
}

/// The per-request context handed to dispatch functions: the server
/// library interface of Table 3-1 plus the segment view.
pub struct OpCtx<'a> {
    server: &'a Arc<ServerInner>,
    /// The requesting transaction.
    pub tid: Tid,
    guard: RefCell<Option<MutexGuard<'a, ()>>>,
}

impl<'a> OpCtx<'a> {
    /// Runs `f` with the server monitor released — the coroutine switch at
    /// a wait point.
    fn coroutine_wait<R>(&self, f: impl FnOnce() -> R) -> R {
        let held = self.guard.borrow_mut().take();
        drop(held);
        let r = f();
        *self.guard.borrow_mut() = Some(self.server.monitor.lock());
        r
    }

    // ---- Address arithmetic ----

    /// `CreateObjectID(VirtualAddress, Length)`: an object identifier for
    /// `len` bytes at byte offset `offset` of the recoverable segment.
    pub fn create_object_id(&self, offset: u64, len: u32) -> ObjectId {
        ObjectId::new(self.server.seg_id, offset, len)
    }

    /// `ConvertObjectIDtoVirtualAddress`: the byte offset back out.
    pub fn object_offset(&self, object: ObjectId) -> u64 {
        object.offset
    }

    // ---- Locking ----

    /// `LockObject`: acquires `mode`, waiting (with the server's time-out,
    /// capped at the transaction's remaining deadline budget) if
    /// unavailable; the monitor is released while waiting.
    pub fn lock_object(&self, object: ObjectId, mode: StdMode) -> Result<(), ServerError> {
        if !self.server.locks.try_lock(self.tid, object, mode) {
            // A transaction with 50ms of budget must not block the full
            // configured lock time-out: the wait is min(timeout,
            // remaining). The lock manager's time-out path releases the
            // queue slot and batons the wakeup to successors, so an
            // expiring waiter never strands the FIFO queue.
            let deadline = self.server.tx_deadline(self.tid);
            let timeout = match deadline {
                Some(d) => d.cap(self.server.lock_timeout),
                None => self.server.lock_timeout,
            };
            let locks = Arc::clone(&self.server.locks);
            let tid = self.tid;
            self.coroutine_wait(move || locks.lock(tid, object, mode, timeout)).map_err(
                |e| match e {
                    LockError::Timeout(_) => {
                        if deadline.is_some_and(|d| d.is_expired()) {
                            if let Some(c) = &self.server.deadline_expired {
                                c.inc();
                            }
                            ServerError::DeadlineExceeded
                        } else {
                            ServerError::LockTimeout
                        }
                    }
                    LockError::Deadlock(_) => ServerError::Deadlock,
                },
            )?;
        }
        // The transaction may have been aborted before this grant: while
        // the request was blocked (deadlock victim, remote abort), or —
        // on the immediate-grant path — before the request even reached
        // this server (a delayed or duplicate call racing the abort
        // datagram). In both cases the abort already released the
        // transaction's locks and undid its updates, so a lock granted
        // *now* would never be swept up again. The Transaction Manager
        // marks the phase aborted before any release, so checking after
        // the grant is race-free: refuse the grant rather than write as
        // a zombie after rollback.
        if self.server.tm.is_aborted(self.tid) {
            self.server.locks.release_all(self.tid);
            return Err(ServerError::Aborted(format!("{} aborted before lock grant", self.tid)));
        }
        Ok(())
    }

    /// `ConditionallyLockObject`: acquires only if immediately available.
    pub fn conditionally_lock_object(&self, object: ObjectId, mode: StdMode) -> bool {
        if !self.server.locks.try_lock(self.tid, object, mode) {
            return false;
        }
        // Same zombie guard as `lock_object`: a grant for an
        // already-aborted transaction would never be released.
        if self.server.tm.is_aborted(self.tid) {
            self.server.locks.release_all(self.tid);
            return false;
        }
        true
    }

    /// `IsObjectLocked`: whether any transaction holds a lock on `object`.
    pub fn is_object_locked(&self, object: ObjectId) -> bool {
        self.server.locks.is_locked(object)
    }

    // ---- Paging control ----

    fn pool(&self) -> Arc<tabs_kernel::BufferPool> {
        Arc::clone(self.server.segment.pool())
    }

    /// `PinObject`: prevents the object's pages from being paged out.
    pub fn pin_object(&self, object: ObjectId) -> Result<(), ServerError> {
        let pool = self.pool();
        for page in object.pages() {
            pool.pin(page).map_err(|e| ServerError::Storage(e.to_string()))?;
        }
        self.server.tx.lock().entry(self.tid).or_default().pinned.push(object);
        Ok(())
    }

    /// `UnPinObject`.
    pub fn unpin_object(&self, object: ObjectId) -> Result<(), ServerError> {
        let pool = self.pool();
        for page in object.pages() {
            pool.unpin(page).map_err(|e| ServerError::Storage(e.to_string()))?;
        }
        if let Some(ctx) = self.server.tx.lock().get_mut(&self.tid) {
            if let Some(i) = ctx.pinned.iter().position(|o| *o == object) {
                ctx.pinned.remove(i);
            }
        }
        Ok(())
    }

    /// `UnPinAllObjects`.
    pub fn unpin_all_objects(&self) -> Result<(), ServerError> {
        let pinned: Vec<ObjectId> = self
            .server
            .tx
            .lock()
            .get_mut(&self.tid)
            .map(|c| std::mem::take(&mut c.pinned))
            .unwrap_or_default();
        let pool = self.pool();
        for object in pinned {
            for page in object.pages() {
                pool.unpin(page).map_err(|e| ServerError::Storage(e.to_string()))?;
            }
        }
        Ok(())
    }

    // ---- Data access ----

    /// Reads the object's current bytes.
    pub fn read_object(&self, object: ObjectId) -> Result<Vec<u8>, ServerError> {
        self.server
            .segment
            .read_vec(object.offset, object.len as usize)
            .map_err(|e| ServerError::Storage(e.to_string()))
    }

    /// Writes bytes *without* logging. For volatile-reconstructible data
    /// only (e.g. the weak queue's tail pointer, §4.2) — not failure
    /// atomic.
    pub fn write_raw(&self, object: ObjectId, data: &[u8]) -> Result<(), ServerError> {
        if data.len() != object.len as usize {
            return Err(ServerError::BadRequest("size mismatch".into()));
        }
        self.server
            .segment
            .write(object.offset, data)
            .map_err(|e| ServerError::Storage(e.to_string()))
    }

    /// The mapped segment, for richer typed access.
    pub fn segment(&self) -> &MappedSegment {
        &self.server.segment
    }

    // ---- Logging (value) ----

    /// `PinAndBuffer`: pins the object and copies its existing (old) value
    /// into a buffer in anticipation of a modification.
    pub fn pin_and_buffer(&self, object: ObjectId) -> Result<(), ServerError> {
        self.pin_object(object)?;
        let old = self.read_object(object)?;
        self.server.tx.lock().entry(self.tid).or_default().buffered.insert(object, old);
        Ok(())
    }

    /// `LogAndUnPin`: sends the buffered old value and the existing (new)
    /// value to the Recovery Manager, then unpins the object.
    pub fn log_and_unpin(&self, object: ObjectId) -> Result<(), ServerError> {
        let old = self
            .server
            .tx
            .lock()
            .get_mut(&self.tid)
            .and_then(|c| c.buffered.remove(&object))
            .ok_or_else(|| ServerError::BadRequest("object was not buffered".into()))?;
        let new = self.read_object(object)?;
        self.server.rm.log_value_update(self.tid, object, old, new);
        self.server.tx.lock().entry(self.tid).or_default().updates = true;
        self.unpin_object(object)
    }

    // ---- Locking + logging batches (the B-tree path, §4.4) ----

    /// `LockAndMark`: locks the object and enqueues it on the
    /// "to be modified" queue.
    pub fn lock_and_mark(&self, object: ObjectId, mode: StdMode) -> Result<(), ServerError> {
        self.lock_object(object, mode)?;
        self.server.tx.lock().entry(self.tid).or_default().marked.push(object);
        Ok(())
    }

    /// `PinAndBufferMarkedObjects`: pins every marked object and buffers
    /// its current (old) value.
    pub fn pin_and_buffer_marked_objects(&self) -> Result<(), ServerError> {
        let marked: Vec<ObjectId> =
            self.server.tx.lock().get(&self.tid).map(|c| c.marked.clone()).unwrap_or_default();
        for object in marked {
            if !self
                .server
                .tx
                .lock()
                .get(&self.tid)
                .map(|c| c.buffered.contains_key(&object))
                .unwrap_or(false)
            {
                self.pin_and_buffer(object)?;
            }
        }
        Ok(())
    }

    /// `LogAndUnPinMarkedObjects`: logs old/new for every marked object,
    /// unpins them all, and clears the queue.
    pub fn log_and_unpin_marked_objects(&self) -> Result<(), ServerError> {
        let marked: Vec<ObjectId> = self
            .server
            .tx
            .lock()
            .get_mut(&self.tid)
            .map(|c| std::mem::take(&mut c.marked))
            .unwrap_or_default();
        for object in marked {
            let buffered = self
                .server
                .tx
                .lock()
                .get(&self.tid)
                .map(|c| c.buffered.contains_key(&object))
                .unwrap_or(false);
            if buffered {
                self.log_and_unpin(object)?;
            }
        }
        Ok(())
    }

    // ---- Logging (operation) ----

    /// Spools an operation-logging record for a registered operation. The
    /// caller has already applied the operation to the mapped segment.
    pub fn log_operation(
        &self,
        object: ObjectId,
        name: &str,
        undo_args: Vec<u8>,
        redo_args: Vec<u8>,
    ) -> Result<(), ServerError> {
        if !self.server.ops.lock().contains_key(name) {
            return Err(ServerError::BadRequest(format!("operation {name} not registered")));
        }
        self.server.rm.log_operation(self.tid, object, name, undo_args, redo_args);
        self.server.tx.lock().entry(self.tid).or_default().updates = true;
        Ok(())
    }

    // ---- Transaction management ----

    /// `ExecuteTransaction`: runs `f` within a new top-level transaction
    /// (used by servers that must commit effects independently of the
    /// client's transaction, like the I/O server, §4.3). Starting a
    /// transaction is a wait point: the monitor is released around the
    /// begin/commit exchanges.
    pub fn execute_transaction(
        &self,
        f: impl FnOnce(&OpCtx<'a>) -> Result<Vec<u8>, ServerError>,
    ) -> Result<Vec<u8>, ServerError> {
        let tm = Arc::clone(&self.server.tm);
        let new_tid = self
            .coroutine_wait(|| tm.begin(Tid::NULL))
            .map_err(|e| ServerError::Other(e.to_string()))?;
        // Enlist ourselves so commit reaches this server's participant.
        {
            let mut tx = self.server.tx.lock();
            tx.entry(new_tid).or_default();
        }
        let participant: Arc<dyn Participant> =
            Arc::new(ServerParticipant { inner: Arc::clone(self.server) });
        tm.enlist(new_tid, &self.server.name, participant);
        let sub_ctx = OpCtx {
            server: self.server,
            tid: new_tid,
            guard: RefCell::new(self.guard.borrow_mut().take()),
        };
        let result = f(&sub_ctx);
        // Return the monitor guard to the outer context.
        *self.guard.borrow_mut() = sub_ctx.guard.borrow_mut().take();
        drop(sub_ctx);
        match &result {
            Ok(_) => {
                let committed = self
                    .coroutine_wait(|| tm.end(new_tid))
                    .map_err(|e| ServerError::Other(e.to_string()))?;
                if !committed {
                    return Err(ServerError::Aborted(format!("{new_tid}")));
                }
            }
            Err(_) => {
                let _ = self.coroutine_wait(|| tm.abort(new_tid));
            }
        }
        result
    }

    /// Whether the current transaction performed updates on this server.
    pub fn has_updates(&self) -> bool {
        self.server.tx_updates(self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tabs_kernel::{BufferPool, MemDisk, NodeId, PerfCounters, SegmentSpec};
    use tabs_wal::{LogManager, MemLogDevice};

    // A tiny rig: one node's kernel/rm/tm plus one data server exposing a
    // u64-cell interface (opcode 1 = get(idx), opcode 2 = set(idx, val)).

    struct Rig {
        deps: ServerDeps,
        pool: Arc<BufferPool>,
    }

    fn seg() -> SegmentId {
        SegmentId { node: NodeId(1), index: 0 }
    }

    fn rig() -> Rig {
        let kernel = Kernel::new(NodeId(1));
        let perf = Arc::clone(kernel.perf());
        let pool = BufferPool::new(32, Arc::clone(&perf));
        pool.register_segment(SegmentSpec {
            id: seg(),
            name: "cells".into(),
            disk: MemDisk::new(64),
            base_sector: 0,
            pages: 64,
        })
        .unwrap();
        let log = LogManager::open(MemLogDevice::new(1 << 20), Arc::clone(&perf)).unwrap();
        let rm = RecoveryManager::new(NodeId(1), log, Arc::clone(&pool), perf);
        pool.set_gate(rm.gate());
        let tm = TransactionManager::new(NodeId(1), 1, Arc::clone(&rm), PerfCounters::new());
        Rig { deps: ServerDeps::new(kernel, rm, tm), pool }
    }

    fn cell_dispatch() -> Dispatch {
        Arc::new(|ctx, opcode, args| {
            let idx = u64::from_le_bytes(args[..8].try_into().unwrap());
            let obj = ctx.create_object_id(idx * 8, 8);
            match opcode {
                1 => {
                    ctx.lock_object(obj, StdMode::Shared)?;
                    ctx.read_object(obj)
                }
                2 => {
                    let val = &args[8..16];
                    ctx.lock_object(obj, StdMode::Exclusive)?;
                    ctx.pin_and_buffer(obj)?;
                    ctx.write_raw(obj, val)?;
                    ctx.log_and_unpin(obj)?;
                    Ok(vec![])
                }
                _ => Err(ServerError::BadRequest("opcode".into())),
            }
        })
    }

    fn start_cell_server(r: &Rig) -> DataServer {
        let ds = DataServer::new(&r.deps, ServerConfig::new("cells", seg())).unwrap();
        ds.accept_requests(cell_dispatch());
        ds
    }

    fn get(r: &Rig, ds: &DataServer, tid: Tid, idx: u64) -> Result<u64, tabs_proto::RpcError> {
        let out =
            tabs_proto::call(&r.deps.kernel, &ds.send_right(), tid, 1, idx.to_le_bytes().to_vec())?;
        Ok(u64::from_le_bytes(out[..8].try_into().unwrap()))
    }

    fn set(
        r: &Rig,
        ds: &DataServer,
        tid: Tid,
        idx: u64,
        val: u64,
    ) -> Result<(), tabs_proto::RpcError> {
        let mut args = idx.to_le_bytes().to_vec();
        args.extend_from_slice(&val.to_le_bytes());
        tabs_proto::call(&r.deps.kernel, &ds.send_right(), tid, 2, args)?;
        Ok(())
    }

    #[test]
    fn set_get_commit_cycle() {
        let r = rig();
        let ds = start_cell_server(&r);
        let t = r.deps.tm.begin(Tid::NULL).unwrap();
        set(&r, &ds, t, 3, 42).unwrap();
        assert_eq!(get(&r, &ds, t, 3).unwrap(), 42);
        assert!(r.deps.tm.end(t).unwrap());
        // Locks were released automatically at commit.
        assert_eq!(ds.locks().locked_object_count(), 0);
        // A fresh transaction sees the committed value.
        let t2 = r.deps.tm.begin(Tid::NULL).unwrap();
        assert_eq!(get(&r, &ds, t2, 3).unwrap(), 42);
        r.deps.tm.end(t2).unwrap();
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn abort_restores_old_value_and_releases_locks() {
        let r = rig();
        let ds = start_cell_server(&r);
        let t0 = r.deps.tm.begin(Tid::NULL).unwrap();
        set(&r, &ds, t0, 1, 10).unwrap();
        assert!(r.deps.tm.end(t0).unwrap());

        let t = r.deps.tm.begin(Tid::NULL).unwrap();
        set(&r, &ds, t, 1, 99).unwrap();
        r.deps.tm.abort(t).unwrap();
        assert_eq!(ds.locks().locked_object_count(), 0);
        let t2 = r.deps.tm.begin(Tid::NULL).unwrap();
        assert_eq!(get(&r, &ds, t2, 1).unwrap(), 10, "undo restored the value");
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn write_conflict_times_out() {
        let r = rig();
        let ds = start_cell_server(&r);
        let t1 = r.deps.tm.begin(Tid::NULL).unwrap();
        set(&r, &ds, t1, 2, 5).unwrap();
        let t2 = r.deps.tm.begin(Tid::NULL).unwrap();
        let err = set(&r, &ds, t2, 2, 6).unwrap_err();
        assert_eq!(err, tabs_proto::RpcError::Server(ServerError::LockTimeout));
        r.deps.tm.abort(t1).unwrap();
        r.deps.tm.abort(t2).unwrap();
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn shared_readers_coexist_via_monitor_release() {
        // Two concurrent reads of the same cell under different
        // transactions: the monitor serializes bodies but shared locks let
        // both complete.
        let r = rig();
        let ds = start_cell_server(&r);
        let t1 = r.deps.tm.begin(Tid::NULL).unwrap();
        let t2 = r.deps.tm.begin(Tid::NULL).unwrap();
        assert_eq!(get(&r, &ds, t1, 0).unwrap(), 0);
        assert_eq!(get(&r, &ds, t2, 0).unwrap(), 0);
        r.deps.tm.end(t1).unwrap();
        r.deps.tm.end(t2).unwrap();
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn writer_waits_for_reader_then_proceeds() {
        let r = rig();
        let ds = start_cell_server(&r);
        let t1 = r.deps.tm.begin(Tid::NULL).unwrap();
        assert_eq!(get(&r, &ds, t1, 4).unwrap(), 0); // shared lock held
                                                     // Writer in another thread blocks (monitor released during wait!).
        let r2 = Rig { deps: r.deps.clone(), pool: Arc::clone(&r.pool) };
        let ds2 = ds.clone();
        let t2 = r.deps.tm.begin(Tid::NULL).unwrap();
        let h = std::thread::spawn(move || set(&r2, &ds2, t2, 4, 7));
        std::thread::sleep(Duration::from_millis(50));
        // The reader can still use the server while the writer waits —
        // proof the monitor was released at the lock wait point.
        assert_eq!(get(&r, &ds, t1, 5).unwrap(), 0);
        // Commit the reader; the writer acquires and finishes.
        assert!(r.deps.tm.end(t1).unwrap());
        h.join().unwrap().unwrap();
        assert!(r.deps.tm.end(t2).unwrap());
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn crash_recovery_through_server_library() {
        // Commit one value, leave another uncommitted, crash, recover.
        let r = rig();
        let ds = start_cell_server(&r);
        let t1 = r.deps.tm.begin(Tid::NULL).unwrap();
        set(&r, &ds, t1, 0, 77).unwrap();
        assert!(r.deps.tm.end(t1).unwrap());
        let t2 = r.deps.tm.begin(Tid::NULL).unwrap();
        set(&r, &ds, t2, 1, 88).unwrap(); // never committed
        r.deps.rm.force(None).unwrap();

        // Crash: volatile state vanishes.
        r.pool.invalidate_volatile();
        let report = r.deps.rm.recover().unwrap();
        assert!(report.committed.contains(&t1));
        assert!(report.aborted.contains(&t2));
        let seg_map = ds.segment();
        assert_eq!(seg_map.read_u64(0).unwrap(), 77);
        assert_eq!(seg_map.read_u64(8).unwrap(), 0);
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn marked_objects_batch() {
        let r = rig();
        let ds = DataServer::new(&r.deps, ServerConfig::new("batch", seg())).unwrap();
        ds.accept_requests(Arc::new(|ctx, opcode, _args| {
            match opcode {
                // Update three cells with the LockAndMark protocol: all
                // locks first, then pin/buffer, modify, log/unpin.
                1 => {
                    let objs: Vec<ObjectId> =
                        (0..3).map(|i| ctx.create_object_id(i * 8, 8)).collect();
                    for o in &objs {
                        ctx.lock_and_mark(*o, StdMode::Exclusive)?;
                    }
                    ctx.pin_and_buffer_marked_objects()?;
                    for (i, o) in objs.iter().enumerate() {
                        ctx.write_raw(*o, &(100 + i as u64).to_le_bytes())?;
                    }
                    ctx.log_and_unpin_marked_objects()?;
                    Ok(vec![])
                }
                _ => Err(ServerError::BadRequest("opcode".into())),
            }
        }));
        let t = r.deps.tm.begin(Tid::NULL).unwrap();
        tabs_proto::call(&r.deps.kernel, &ds.send_right(), t, 1, vec![]).unwrap();
        assert!(r.deps.tm.end(t).unwrap());
        assert_eq!(ds.segment().read_u64(0).unwrap(), 100);
        assert_eq!(ds.segment().read_u64(8).unwrap(), 101);
        assert_eq!(ds.segment().read_u64(16).unwrap(), 102);
        // No pins leaked.
        assert!(!r.pool.is_pinned(tabs_kernel::PageId { segment: seg(), page: 0 }));
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn execute_transaction_commits_independently() {
        let r = rig();
        let ds = DataServer::new(&r.deps, ServerConfig::new("io", seg())).unwrap();
        ds.accept_requests(Arc::new(|ctx, opcode, _args| match opcode {
            1 => {
                // Record output under a server-owned top-level transaction
                // (the I/O server pattern, §4.3).
                ctx.execute_transaction(|inner| {
                    let obj = inner.create_object_id(0, 8);
                    inner.lock_object(obj, StdMode::Exclusive)?;
                    inner.pin_and_buffer(obj)?;
                    inner.write_raw(obj, &555u64.to_le_bytes())?;
                    inner.log_and_unpin(obj)?;
                    Ok(vec![])
                })
            }
            _ => Err(ServerError::BadRequest("opcode".into())),
        }));
        let t = r.deps.tm.begin(Tid::NULL).unwrap();
        tabs_proto::call(&r.deps.kernel, &ds.send_right(), t, 1, vec![]).unwrap();
        // Abort the *client* transaction: the ExecuteTransaction effect
        // survives because it committed under its own top-level tid.
        r.deps.tm.abort(t).unwrap();
        assert_eq!(ds.segment().read_u64(0).unwrap(), 555);
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn subtransaction_lock_transfer_through_participant() {
        let r = rig();
        let ds = start_cell_server(&r);
        let top = r.deps.tm.begin(Tid::NULL).unwrap();
        let sub = r.deps.tm.begin(top).unwrap();
        set(&r, &ds, sub, 6, 60).unwrap();
        // Child commits into parent: its exclusive lock transfers.
        assert!(r.deps.tm.end(sub).unwrap());
        let obj = ObjectId::new(seg(), 48, 8);
        assert!(ds.locks().holds(top, obj));
        assert!(!ds.locks().holds(sub, obj));
        assert!(r.deps.tm.end(top).unwrap());
        let t2 = r.deps.tm.begin(Tid::NULL).unwrap();
        assert_eq!(get(&r, &ds, t2, 6).unwrap(), 60);
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn aborted_transaction_refused_service() {
        let r = rig();
        let ds = start_cell_server(&r);
        let t = r.deps.tm.begin(Tid::NULL).unwrap();
        set(&r, &ds, t, 0, 1).unwrap();
        r.deps.tm.abort(t).unwrap();
        let err = set(&r, &ds, t, 0, 2).unwrap_err();
        assert!(matches!(err, tabs_proto::RpcError::Server(ServerError::Aborted(_))));
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }

    #[test]
    fn pin_leak_fails_prepare() {
        let r = rig();
        let ds = DataServer::new(&r.deps, ServerConfig::new("leaky", seg())).unwrap();
        ds.accept_requests(Arc::new(|ctx, _opcode, _args| {
            let obj = ctx.create_object_id(0, 8);
            ctx.lock_object(obj, StdMode::Exclusive)?;
            ctx.pin_object(obj)?; // leaked on purpose
            Ok(vec![])
        }));
        let t = r.deps.tm.begin(Tid::NULL).unwrap();
        tabs_proto::call(&r.deps.kernel, &ds.send_right(), t, 1, vec![]).unwrap();
        // Prepare refuses; the transaction aborts.
        assert!(!r.deps.tm.end(t).unwrap());
        r.deps.kernel.shutdown();
        r.deps.kernel.join_all();
    }
}
