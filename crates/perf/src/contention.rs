//! Contention microbenchmark: time-out-only versus probe-based deadlock
//! resolution.
//!
//! The paper resolves deadlocks exclusively by lock time-out (§2.1.3);
//! the detector is the classic alternative the authors cite. This
//! benchmark quantifies the difference on the worst case both must
//! handle: repeated two-node opposite-order lock acquisition. Each round
//! manufactures one genuine cross-node cycle and measures how long the
//! system takes to break it — from the moment the cycle closes until
//! both sides are unblocked (one aborted, one committed).
//!
//! With time-outs only, every resolution costs the full configured
//! time-out. With detection, probes find the cycle in a few scan
//! intervals regardless of the time-out, so the time-out can be set
//! generously without hurting contended latency.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use tabs_app_lib::AppHandle;
use tabs_core::{Cluster, ClusterConfig, NodeId, Tid};
use tabs_servers::{IntArrayClient, IntArrayServer};

use crate::report::{BenchReport, RunOpts, Workload, WorkloadOutput};

/// One mode's measurements over a full run.
#[derive(Debug, Clone)]
pub struct ContentionResult {
    /// Whether the deadlock detector was running.
    pub detect: bool,
    /// The configured lock time-out (the backstop in both modes).
    pub lock_timeout: Duration,
    /// Per-round resolution latency: cycle closed → both sides unblocked.
    pub resolutions: Vec<Duration>,
    /// Transactions that committed.
    pub commits: u64,
    /// Transactions that aborted (the resolution victims).
    pub aborts: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
}

impl ContentionResult {
    /// The `p`-th percentile (0–100) of resolution latency.
    pub fn percentile(&self, p: u32) -> Duration {
        let mut sorted = self.resolutions.clone();
        sorted.sort();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = (sorted.len() - 1) * p as usize / 100;
        sorted[idx]
    }

    /// Median resolution latency.
    pub fn p50(&self) -> Duration {
        self.percentile(50)
    }

    /// Tail resolution latency.
    pub fn p95(&self) -> Duration {
        self.percentile(95)
    }

    /// Deadlock victims resolved per second of wall-clock time.
    pub fn aborts_per_sec(&self) -> f64 {
        self.aborts as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Mode label for tables and reports.
    pub fn mode(&self) -> &'static str {
        if self.detect {
            "detect"
        } else {
            "timeout-only"
        }
    }

    /// The run as a serializable report row. The latency percentiles are
    /// *deadlock-resolution* latencies (cycle closed → both sides
    /// unblocked), not transaction latencies — `config.latency_kind`
    /// records that.
    pub fn to_report(&self) -> BenchReport {
        let mut r = BenchReport {
            workload: "contention".into(),
            scenario: "two-node-cycle".into(),
            mode: self.mode().into(),
            duration_ms: self.elapsed.as_secs_f64() * 1e3,
            committed: self.commits,
            aborted: self.aborts,
            throughput_tps: self.commits as f64 / self.elapsed.as_secs_f64().max(1e-9),
            p50_ms: self.p50().as_secs_f64() * 1e3,
            p95_ms: self.p95().as_secs_f64() * 1e3,
            p99_ms: self.percentile(99).as_secs_f64() * 1e3,
            deadlocks_resolved: self.aborts,
            ..BenchReport::default()
        };
        r.config.insert("latency_kind".into(), "resolution".into());
        r.config.insert("rounds".into(), self.resolutions.len().to_string());
        r.config
            .insert("lock_timeout_ms".into(), format!("{}", self.lock_timeout.as_secs_f64() * 1e3));
        r
    }
}

/// The `tables contention` workload: both resolution modes side by side.
pub struct ContentionWorkload;

impl Workload for ContentionWorkload {
    fn name(&self) -> &'static str {
        "contention"
    }

    fn describe(&self) -> &'static str {
        "deadlock-resolution latency: time-out-only vs probe-based detection"
    }

    fn run(&self, opts: &RunOpts) -> Result<WorkloadOutput, String> {
        let rounds = if opts.quick { 6 } else { opts.iters.unwrap_or(40) };
        let timeout = Duration::from_millis(400);
        let timeout_only = run(false, rounds, timeout);
        let detect = run(true, rounds, timeout);
        Ok(WorkloadOutput {
            text: render(&[timeout_only.clone(), detect.clone()]),
            reports: vec![timeout_only.to_report(), detect.to_report()],
            gate_failure: None,
        })
    }
}

/// Runs `rounds` manufactured two-node deadlocks with the given
/// resolution mode and measures each round's resolution latency.
pub fn run(detect: bool, rounds: u32, lock_timeout: Duration) -> ContentionResult {
    let cluster = Cluster::with_config(
        ClusterConfig::default().deadlock_detection(detect).lock_timeout(lock_timeout),
    );
    let n1 = cluster.boot_node(NodeId(1));
    let n2 = cluster.boot_node(NodeId(2));
    let a1 = IntArrayServer::spawn(&n1, "cnt-a", 4).expect("array a");
    let a2 = IntArrayServer::spawn(&n2, "cnt-b", 4).expect("array b");
    n1.recover().expect("recover n1");
    n2.recover().expect("recover n2");

    let resolve = |node: &tabs_core::Node, name: &str| {
        node.resolve(name, 1, Duration::from_secs(3)).into_iter().next().expect("resolvable").0
    };
    let app1 = n1.app();
    let app2 = n2.app();
    let c1_local = IntArrayClient::new(app1.clone(), a1.send_right());
    let c1_remote = IntArrayClient::new(app1.clone(), resolve(&n1, "cnt-b"));
    let c2_local = IntArrayClient::new(app2.clone(), a2.send_right());
    let c2_remote = IntArrayClient::new(app2.clone(), resolve(&n2, "cnt-a"));

    app1.run(|t| {
        c1_local.set(t, 0, 0)?;
        c1_remote.set(t, 0, 0)
    })
    .expect("seed cells");

    let mut result = ContentionResult {
        detect,
        lock_timeout,
        resolutions: Vec::with_capacity(rounds as usize),
        commits: 0,
        aborts: 0,
        elapsed: Duration::ZERO,
    };
    let run_start = Instant::now();
    for _ in 0..rounds {
        // Both sides grab their local lock, rendezvous so the cycle is
        // guaranteed, then reach across. The round's resolution latency
        // is the slower side's wait: the victim learns of its abort, the
        // survivor acquires the freed lock.
        let barrier = Arc::new(Barrier::new(2));
        let side = |app: AppHandle,
                    local: IntArrayClient,
                    remote: IntArrayClient,
                    barrier: Arc<Barrier>| {
            std::thread::spawn(move || {
                let t = app.begin_transaction(Tid::NULL).expect("begin");
                local.add(t, 0, 1).expect("local lock");
                barrier.wait();
                let start = Instant::now();
                let committed = match remote.add(t, 0, 1) {
                    Ok(_) => app.end_transaction(t).expect("end").is_committed(),
                    Err(_) => {
                        let _ = app.abort_transaction(t);
                        false
                    }
                };
                (committed, start.elapsed())
            })
        };
        let h1 = side(app1.clone(), c1_local.clone(), c1_remote.clone(), Arc::clone(&barrier));
        let h2 = side(app2.clone(), c2_local.clone(), c2_remote.clone(), barrier);
        let (ok1, el1) = h1.join().expect("side 1");
        let (ok2, el2) = h2.join().expect("side 2");
        result.resolutions.push(el1.max(el2));
        result.commits += (ok1 as u64) + (ok2 as u64);
        result.aborts += (!ok1 as u64) + (!ok2 as u64);
    }
    result.elapsed = run_start.elapsed();
    n1.shutdown();
    n2.shutdown();
    result
}

/// Runs both modes and renders the side-by-side comparison table.
pub fn compare(rounds: u32, lock_timeout: Duration) -> String {
    let timeout_only = run(false, rounds, lock_timeout);
    let detect = run(true, rounds, lock_timeout);
    render(&[timeout_only, detect])
}

/// ASCII table over any set of contention results.
pub fn render(results: &[ContentionResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Deadlock resolution under contention ({} rounds each, lock time-out {:?})\n",
        results.first().map(|r| r.resolutions.len()).unwrap_or(0),
        results.first().map(|r| r.lock_timeout).unwrap_or(Duration::ZERO),
    ));
    out.push_str(
        "mode           p50 resolution   p95 resolution   commits   aborts   aborts/sec\n",
    );
    out.push_str("-----------------------------------------------------------------------------\n");
    for r in results {
        out.push_str(&format!(
            "{:<14} {:>14} {:>16} {:>9} {:>8} {:>12.1}\n",
            r.mode(),
            format!("{:.2?}", r.p50()),
            format!("{:.2?}", r.p95()),
            r.commits,
            r.aborts,
            r.aborts_per_sec(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_beats_the_timeout_by_a_wide_margin() {
        // Short run, generous margin: with a 400ms time-out the
        // time-out-only mode cannot resolve faster than 400ms, while
        // detection should land in a few scan intervals.
        let timeout = Duration::from_millis(400);
        let with_detect = run(true, 3, timeout);
        assert_eq!(with_detect.resolutions.len(), 3);
        assert_eq!(with_detect.commits, 3, "one side commits each round");
        assert_eq!(with_detect.aborts, 3, "one victim each round");
        assert!(
            with_detect.p95() < timeout / 2,
            "detection should beat the time-out backstop: p95 {:?}",
            with_detect.p95()
        );
        let without = run(false, 1, timeout);
        assert!(
            without.p50() >= timeout / 2,
            "time-out-only resolution should cost about the time-out: p50 {:?}",
            without.p50()
        );
        assert!(without.p50() > with_detect.p95(), "detection strictly faster");
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let r = ContentionResult {
            detect: true,
            lock_timeout: Duration::from_secs(1),
            resolutions: vec![
                Duration::from_millis(30),
                Duration::from_millis(10),
                Duration::from_millis(20),
            ],
            commits: 3,
            aborts: 3,
            elapsed: Duration::from_secs(1),
        };
        assert_eq!(r.p50(), Duration::from_millis(20));
        assert_eq!(r.percentile(0), Duration::from_millis(10));
        assert_eq!(r.percentile(100), Duration::from_millis(30));
        assert_eq!(ContentionResult { resolutions: vec![], ..r }.p50(), Duration::ZERO);
    }

    /// `tables contention --json` rows must survive the `BENCH_*.json`
    /// round trip and satisfy every `tables checkbench` liveness rule
    /// (parseable schema, committed > 0, `invariant_ok` absent or true).
    #[test]
    fn report_rows_round_trip_through_a_bench_file_and_pass_checkbench_rules() {
        use crate::report::BenchFile;

        let result = ContentionResult {
            detect: false,
            lock_timeout: Duration::from_millis(400),
            resolutions: vec![Duration::from_millis(410), Duration::from_millis(430)],
            commits: 2,
            aborts: 2,
            elapsed: Duration::from_secs(1),
        };
        let file = BenchFile::new("2026-08-09", vec![result.to_report()]);
        let parsed = BenchFile::parse(&file.to_json()).expect("round trip");
        assert_eq!(parsed.runs.len(), 1);
        let row = &parsed.runs[0];
        assert_eq!(row.workload, "contention");
        assert_eq!(row.scenario, "two-node-cycle");
        assert_eq!(row.mode, "timeout-only");
        assert_eq!(row.committed, 2);
        assert_eq!(row.deadlocks_resolved, 2);
        assert!((row.p50_ms - 410.0).abs() < 1e-6);
        assert_eq!(row.config.get("latency_kind").map(String::as_str), Some("resolution"));
        assert_eq!(row.config.get("rounds").map(String::as_str), Some("2"));
        // The checkbench liveness rules the CLI applies to every row.
        assert!(row.committed > 0);
        assert!(row.config.get("invariant_ok").is_none_or(|v| v == "true"));
    }
}
